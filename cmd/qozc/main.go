// Command qozc is a command-line error-bounded lossy compressor for raw
// binary float32/float64 scientific data files (the format SDRBench
// distributes), built on the unified codec registry of the QoZ library.
//
// Usage:
//
//	qozc compress   -in data.f32 -dims 100,500,500 -rel 1e-3 [-abs E]
//	                [-codec qoz|sz2|sz3|zfp|mgard] [-mode cr|psnr|ssim|ac]
//	                [-workers N] [-prec 32|64] [-out data.qoz]
//	qozc decompress -in data.qoz [-out data.f32]
//	qozc put        -in data.f32 -dims 100,500,500 -rel 1e-3 [-abs E]
//	                [-codec C] [-brick 64,64,64] [-workers N] [-prec 32|64]
//	                [-mutable] [-out data.qozb]
//	qozc put        -in data.qoz [-brick ...] [-mutable] [-out data.qozb]
//	qozc append     -store data.qozb -in steps.f32 [-workers N]
//	qozc compact    -store data.qozb
//	qozc get        -in data.qozb [-out data.f32|data.f64]
//	qozc extract    -in data.qozb -box 0:32,128:256,0:64 [-out roi.f32|roi.f64]
//	qozc query      -in data.qozb -op gt|lt|range|min|max|hist [-value V]
//	                [-low L -high H] [-bins N] [-box lo:hi,...] [-maxloc K] [-json]
//	qozc info       -in data.qoz|data.qozb [-json]
//	qozc codecs
//
// Input data is little-endian IEEE-754, row-major with the last listed
// dimension varying fastest. Compression writes the slab stream format,
// chunking large fields and compressing slabs concurrently; decompression
// accepts slab streams and the legacy container formats of every
// registered codec.
//
// put builds a brick store (see qoz/store): the field — a raw float32 or
// float64 file (-prec), or an existing .qoz slab stream re-bricked without
// materializing the field — is partitioned into fixed-shape bricks
// compressed independently, so get/extract can decode any region of
// interest by touching only the bricks it intersects. A float64 input
// yields a float64 store (format v2, element kind in the header); get and
// extract then emit raw float64 back.
//
// put -mutable builds a format v3 (generation-based) store instead:
// append then grows it by whole time steps — each append commits a new
// generation journal-style, so readers and qozd pick the steps up without
// the file ever being rewritten — and compact reclaims the space of
// superseded generations. See docs/FORMAT.md for the on-disk format.
//
// query answers a predicate over a store without materializing the
// field: count the points beyond a threshold or inside a range (gt, lt,
// range; -maxloc also lists the first matches), locate the extremum
// (min, max), or histogram a box (hist). Stores written at format v5
// carry a per-brick statistics index, and the query decodes only the
// bricks the index cannot resolve — the report says how many bricks were
// pruned versus decoded. info shows the index's field-wide aggregate.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"qoz"
	"qoz/internal/container"
	"qoz/internal/interp"
	"qoz/metrics"
	"qoz/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = compressCmd(os.Args[2:])
	case "decompress":
		err = decompressCmd(os.Args[2:])
	case "put":
		err = putCmd(os.Args[2:])
	case "append":
		err = appendCmd(os.Args[2:])
	case "compact":
		err = compactCmd(os.Args[2:])
	case "get":
		err = getCmd(os.Args[2:])
	case "extract":
		err = extractCmd(os.Args[2:])
	case "query":
		err = queryCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	case "compare":
		err = compareCmd(os.Args[2:])
	case "codecs":
		err = codecsCmd()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qozc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qozc compress|decompress|put|append|compact|get|extract|query|info|compare|codecs [flags] (see -h per subcommand)")
	os.Exit(2)
}

// codecsCmd lists the compressors available through the registry.
func codecsCmd() error {
	for _, name := range qoz.Codecs() {
		c, err := qoz.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s stream id %d\n", name, c.ID())
	}
	return nil
}

// compareCmd assesses reconstruction quality between two raw float32 files
// (a Z-checker-style distortion report).
func compareCmd(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	orig := fs.String("orig", "", "original raw float32 file (required)")
	recon := fs.String("recon", "", "reconstructed raw float32 file (required)")
	dimsArg := fs.String("dims", "", "comma-separated dimensions (required)")
	fs.Parse(args)
	if *orig == "" || *recon == "" || *dimsArg == "" {
		return fmt.Errorf("compare requires -orig, -recon, and -dims")
	}
	dims, err := parseDims(*dimsArg)
	if err != nil {
		return err
	}
	a, err := readFloats(*orig, dims)
	if err != nil {
		return err
	}
	b, err := readFloats(*recon, dims)
	if err != nil {
		return err
	}
	maxErr, err := metrics.MaxAbsError(a, b)
	if err != nil {
		return err
	}
	psnr, _ := metrics.PSNR(a, b)
	nrmse, _ := metrics.NRMSE(a, b)
	ssim, _ := metrics.SSIM(a, b, dims)
	ac, _ := metrics.AutoCorrelation(a, b, 1)
	fmt.Printf("points:     %d  dims %v\n", len(a), dims)
	fmt.Printf("max |err|:  %.6g\n", maxErr)
	fmt.Printf("PSNR:       %.3f dB\n", psnr)
	fmt.Printf("NRMSE:      %.6g\n", nrmse)
	fmt.Printf("SSIM:       %.6f\n", ssim)
	fmt.Printf("AC(lag-1):  %+.6f\n", ac)
	return nil
}

func compressCmd(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input raw float file (required)")
	out := fs.String("out", "", "output file (default: <in>.qoz)")
	dimsArg := fs.String("dims", "", "comma-separated dimensions, e.g. 100,500,500 (required)")
	rel := fs.Float64("rel", 0, "value-range-relative error bound ε")
	abs := fs.Float64("abs", 0, "absolute error bound e")
	codecName := fs.String("codec", qoz.DefaultCodec, "compressor: "+strings.Join(qoz.Codecs(), ", "))
	mode := fs.String("mode", "cr", "tuning metric (qoz codec only): cr, psnr, ssim, or ac")
	prec := fs.Int("prec", 32, "input precision in bits: 32 or 64")
	workers := fs.Int("workers", 0, "concurrent slab compressions (0 = all cores)")
	fs.Parse(args)
	if *in == "" || *dimsArg == "" {
		return fmt.Errorf("compress requires -in and -dims")
	}
	dims, err := parseDims(*dimsArg)
	if err != nil {
		return err
	}
	metric, err := parseMode(*mode)
	if err != nil {
		return err
	}
	codec, err := qoz.Lookup(*codecName)
	if err != nil {
		return err
	}
	opts := qoz.Options{ErrorBound: *abs, RelBound: *rel, Metric: metric}
	dst := *out
	if dst == "" {
		dst = *in + ".qoz"
	}

	// Read and validate the input before touching dst, then stream into a
	// temp file renamed over dst only on success, so a failed run never
	// clobbers an existing archive.
	ctx := context.Background()
	var origBytes int
	var encode func(enc *qoz.Encoder) error
	switch *prec {
	case 32:
		data, err := readFloats(*in, dims)
		if err != nil {
			return err
		}
		origBytes = len(data) * 4
		encode = func(enc *qoz.Encoder) error { return enc.Encode(ctx, data, dims) }
	case 64:
		data, err := readFloats64(*in, dims)
		if err != nil {
			return err
		}
		origBytes = len(data) * 8
		encode = func(enc *qoz.Encoder) error { return enc.EncodeFloat64(ctx, data, dims) }
	default:
		return fmt.Errorf("unsupported precision %d (want 32 or 64)", *prec)
	}

	if err := writeAtomic(dst, func(f *os.File) error {
		enc, err := qoz.NewEncoder(f, qoz.StreamOptions{Codec: codec, Opts: opts, Workers: *workers})
		if err != nil {
			return err
		}
		return encode(enc)
	}); err != nil {
		return err
	}
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (CR %.1f), codec=%s\n",
		dst, origBytes, st.Size(), float64(origBytes)/float64(st.Size()), codec.Name())
	return nil
}

// isFloat64Payload reports whether buf reconstructs to double precision —
// either the legacy float64 envelope or a float64 slab stream.
func isFloat64Payload(buf []byte) bool {
	if qoz.IsFloat64Stream(buf) {
		return true
	}
	if qoz.IsStream(buf) {
		hdr, err := qoz.NewDecoder(bytes.NewReader(buf)).Header()
		return err == nil && hdr.Float64
	}
	return false
}

func decompressCmd(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input .qoz file (required)")
	out := fs.String("out", "", "output raw float file (default: <in>.f32 or .f64)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("decompress requires -in")
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if isFloat64Payload(buf) {
		data, dims, err := qoz.Decode[float64](ctx, buf)
		if err != nil {
			return err
		}
		dst := *out
		if dst == "" {
			dst = *in + ".f64"
		}
		raw := make([]byte, 8*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
		}
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: dims %v, %d points (float64)\n", dst, dims, len(data))
		return nil
	}
	data, dims, err := qoz.Decode[float32](ctx, buf)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = *in + ".f32"
	}
	if err := writeRawFloats(dst, data); err != nil {
		return err
	}
	fmt.Printf("%s: dims %v, %d points\n", dst, dims, len(data))
	return nil
}

// writeAtomic streams the result of fill into dst via a temp file renamed
// over dst only on success, so a failed run never clobbers an archive.
func writeAtomic(dst string, fill func(f *os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// putCmd builds a brick store from a raw float32 file or an existing slab
// stream.
func putCmd(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	in := fs.String("in", "", "input: raw float32 file (needs -dims) or .qoz slab stream (required)")
	out := fs.String("out", "", "output store file (default: <in>.qozb)")
	dimsArg := fs.String("dims", "", "comma-separated dimensions (raw input only)")
	rel := fs.Float64("rel", 0, "value-range-relative error bound ε (raw input only)")
	abs := fs.Float64("abs", 0, "absolute error bound e (raw input only)")
	codecName := fs.String("codec", "", "brick compressor (default: qoz, or the stream's codec)")
	brickArg := fs.String("brick", "", "brick shape, e.g. 64,64,64 (default: ~1 MiB bricks)")
	workers := fs.Int("workers", 0, "concurrent brick compressions (0 = all cores)")
	prec := fs.Int("prec", 32, "raw input precision in bits: 32 or 64 (stream input carries its own)")
	mutable := fs.Bool("mutable", false, "build a mutable (format v3) store that qozc append can grow")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("put requires -in")
	}
	wo := store.WriteOptions{Workers: *workers}
	if *codecName != "" {
		c, err := qoz.Lookup(*codecName)
		if err != nil {
			return err
		}
		wo.Codec = c
	}
	if *brickArg != "" {
		b, err := parseDims(*brickArg)
		if err != nil {
			return err
		}
		wo.Brick = b
	}
	dst := *out
	if dst == "" {
		dst = *in + ".qozb"
	}
	ctx := context.Background()

	// Sniff the format from the first bytes; a multi-GiB input must not be
	// read (or held) twice just to dispatch.
	inF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	var head [4]byte
	n, _ := io.ReadFull(inF, head[:])
	if _, err := inF.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if qoz.IsStream(head[:n]) {
		// Re-brick the stream slab by slab, straight off the file; bound
		// and codec carry over.
		if *mutable {
			if err := putMutableFromStream(ctx, dst, qoz.NewDecoder(inF), wo); err != nil {
				return err
			}
		} else if err := writeAtomic(dst, func(f *os.File) error {
			return store.WriteFrom(ctx, f, qoz.NewDecoder(inF), wo)
		}); err != nil {
			return err
		}
	} else {
		if *dimsArg == "" {
			return fmt.Errorf("put from raw data requires -dims")
		}
		dims, err := parseDims(*dimsArg)
		if err != nil {
			return err
		}
		wo.Opts = qoz.Options{ErrorBound: *abs, RelBound: *rel}
		switch {
		case *prec != 32 && *prec != 64:
			return fmt.Errorf("unsupported precision %d (want 32 or 64)", *prec)
		case *mutable && *prec == 32:
			data, err := readFloats(*in, dims)
			if err != nil {
				return err
			}
			err = putMutableRaw(ctx, dst, data, dims, wo)
			if err != nil {
				return err
			}
		case *mutable:
			data, err := readFloats64(*in, dims)
			if err != nil {
				return err
			}
			wo.Float64 = true
			if err := putMutableRaw(ctx, dst, data, dims, wo); err != nil {
				return err
			}
		default:
			var build func(f *os.File) error
			if *prec == 32 {
				data, err := readFloats(*in, dims)
				if err != nil {
					return err
				}
				build = func(f *os.File) error { return store.Write(ctx, f, data, dims, wo) }
			} else {
				data, err := readFloats64(*in, dims)
				if err != nil {
					return err
				}
				build = func(f *os.File) error { return store.WriteT(ctx, f, data, dims, wo) }
			}
			if err := writeAtomic(dst, build); err != nil {
				return err
			}
		}
	}
	s, err := store.OpenFile(dst, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	points := 1
	for _, d := range s.Dims() {
		points *= d
	}
	elem := 4
	if s.Float64() {
		elem = 8
	}
	fmt.Printf("%s: dims %v, brick %v, %d bricks, dtype=%s, %d -> %d bytes (CR %.1f), codec=%s\n",
		dst, s.Dims(), s.BrickShape(), s.NumBricks(), s.DType(), points*elem, st.Size(),
		float64(points*elem)/float64(st.Size()), s.Codec().Name())
	return nil
}

// putMutableRaw builds a mutable (v3) store at dst from an in-memory
// field: created empty along the slowest dimension, then grown to dims[0]
// steps in one appended generation. dst must not exist (mutable stores
// are grown in place, so there is no atomic-rename temp path).
func putMutableRaw[T qoz.Float](ctx context.Context, dst string, data []T, dims []int, wo store.WriteOptions) error {
	opts, err := qoz.ResolveAbsT(wo.Opts, data)
	if err != nil {
		return err
	}
	wo.Opts = opts
	mdims := append([]int{0}, dims[1:]...)
	m, err := store.CreateMutable(dst, mdims, wo)
	if err != nil {
		return err
	}
	if err := store.AppendStepsT(ctx, m, data); err != nil {
		m.Close()
		os.Remove(dst)
		return err
	}
	return m.Close()
}

// putMutableFromStream builds a mutable (v3) store at dst from a slab
// stream, slab by slab — each slab is whole rows of the slowest
// dimension, which is exactly what AppendSteps takes. Bound and codec
// carry over like store.WriteFrom.
func putMutableFromStream(ctx context.Context, dst string, dec *qoz.Decoder, wo store.WriteOptions) error {
	hdr, err := dec.Header()
	if err != nil {
		return err
	}
	wo.Opts.ErrorBound, wo.Opts.RelBound = hdr.ErrorBound, 0
	if wo.Codec == nil {
		if hdr.CodecName == "" {
			return fmt.Errorf("stream codec id %d is not registered; pass -codec explicitly", hdr.CodecID)
		}
		c, err := qoz.LookupID(hdr.CodecID)
		if err != nil {
			return err
		}
		wo.Codec = c
	}
	wo.Float64 = hdr.Float64
	mdims := append([]int{0}, hdr.Dims[1:]...)
	m, err := store.CreateMutable(dst, mdims, wo)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		m.Close()
		os.Remove(dst)
		return err
	}
	for {
		var aerr error
		if hdr.Float64 {
			var slab []float64
			slab, _, aerr = dec.NextSlabFloat64(ctx)
			if aerr == nil {
				aerr = m.AppendStepsFloat64(ctx, slab)
			}
		} else {
			var slab []float32
			slab, _, aerr = dec.NextSlab(ctx)
			if aerr == nil {
				aerr = m.AppendSteps(ctx, slab)
			}
		}
		if aerr == io.EOF {
			break
		}
		if aerr != nil {
			return fail(aerr)
		}
	}
	return m.Close()
}

// appendCmd appends time steps from a raw float file to a mutable store,
// committing them as one new generation.
func appendCmd(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	st := fs.String("store", "", "mutable .qozb store to append to (required)")
	in := fs.String("in", "", "raw float file holding whole steps in the store's dtype (required)")
	workers := fs.Int("workers", 0, "concurrent brick compressions (0 = all cores)")
	fs.Parse(args)
	if *st == "" || *in == "" {
		return fmt.Errorf("append requires -store and -in")
	}
	m, err := store.OpenMutable(*st, store.Options{Workers: *workers, CacheBytes: -1})
	if err != nil {
		return err
	}
	defer m.Close()
	dims := m.Dims()
	rowPoints := 1
	for _, d := range dims[1:] {
		rowPoints *= d
	}
	elem := 4
	if m.Float64() {
		elem = 8
	}
	fi, err := os.Stat(*in)
	if err != nil {
		return err
	}
	stepBytes := int64(rowPoints) * int64(elem)
	if fi.Size() == 0 || fi.Size()%stepBytes != 0 {
		return fmt.Errorf("%s holds %d bytes; one %s step of %v is %d bytes",
			*in, fi.Size(), m.DType(), dims[1:], stepBytes)
	}
	steps := int(fi.Size() / stepBytes)
	stepDims := append([]int{steps}, dims[1:]...)
	ctx := context.Background()
	if m.Float64() {
		data, err := readFloats64(*in, stepDims)
		if err != nil {
			return err
		}
		if err := m.AppendStepsFloat64(ctx, data); err != nil {
			return err
		}
	} else {
		data, err := readFloats(*in, stepDims)
		if err != nil {
			return err
		}
		if err := m.AppendSteps(ctx, data); err != nil {
			return err
		}
	}
	fmt.Printf("%s: +%d steps -> dims %v, generation %d\n", *st, steps, m.Dims(), m.Generation())
	return nil
}

// compactCmd rewrites a mutable store down to its single latest
// generation, reclaiming superseded brick payloads and old manifests.
func compactCmd(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	st := fs.String("store", "", "mutable .qozb store to compact (required)")
	fs.Parse(args)
	if *st == "" {
		return fmt.Errorf("compact requires -store")
	}
	before, err := os.Stat(*st)
	if err != nil {
		return err
	}
	m, err := store.OpenMutable(*st, store.Options{CacheBytes: -1})
	if err != nil {
		return err
	}
	defer m.Close()
	if err := m.Compact(context.Background()); err != nil {
		return err
	}
	after, err := os.Stat(*st)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes, generation %d\n", *st, before.Size(), after.Size(), m.Generation())
	return nil
}

// getCmd decodes a whole brick store back to raw floats in the store's
// own element type.
func getCmd(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	in := fs.String("in", "", "input .qozb store (required)")
	out := fs.String("out", "", "output raw float file (default: <in>.f32 or .f64)")
	workers := fs.Int("workers", 0, "concurrent brick decodes (0 = all cores)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("get requires -in")
	}
	s, err := store.OpenFile(*in, store.Options{Workers: *workers, CacheBytes: -1})
	if err != nil {
		return err
	}
	defer s.Close()
	if s.Float64() {
		data, err := s.ReadFieldFloat64(context.Background())
		if err != nil {
			return err
		}
		dst := *out
		if dst == "" {
			dst = *in + ".f64"
		}
		if err := writeRawFloats64(dst, data); err != nil {
			return err
		}
		fmt.Printf("%s: dims %v, %d points (float64)\n", dst, s.Dims(), len(data))
		return nil
	}
	data, err := s.ReadField(context.Background())
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = *in + ".f32"
	}
	if err := writeRawFloats(dst, data); err != nil {
		return err
	}
	fmt.Printf("%s: dims %v, %d points\n", dst, s.Dims(), len(data))
	return nil
}

// extractCmd decodes one region of interest out of a brick store in the
// store's own element type.
func extractCmd(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	in := fs.String("in", "", "input .qozb store (required)")
	out := fs.String("out", "", "output raw float file (default: <in>.roi.f32 or .roi.f64)")
	boxArg := fs.String("box", "", "region lo:hi per dimension, e.g. 0:32,128:256,0:64 (required)")
	workers := fs.Int("workers", 0, "concurrent brick decodes (0 = all cores)")
	fs.Parse(args)
	if *in == "" || *boxArg == "" {
		return fmt.Errorf("extract requires -in and -box")
	}
	lo, hi, err := parseBox(*boxArg)
	if err != nil {
		return err
	}
	s, err := store.OpenFile(*in, store.Options{Workers: *workers, CacheBytes: -1})
	if err != nil {
		return err
	}
	defer s.Close()
	var points int
	dst := *out
	if s.Float64() {
		data, err := s.ReadRegionFloat64(context.Background(), lo, hi)
		if err != nil {
			return err
		}
		if dst == "" {
			dst = *in + ".roi.f64"
		}
		if err := writeRawFloats64(dst, data); err != nil {
			return err
		}
		points = len(data)
	} else {
		data, err := s.ReadRegion(context.Background(), lo, hi)
		if err != nil {
			return err
		}
		if dst == "" {
			dst = *in + ".roi.f32"
		}
		if err := writeRawFloats(dst, data); err != nil {
			return err
		}
		points = len(data)
	}
	size := make([]int, len(lo))
	for i := range lo {
		size[i] = hi[i] - lo[i]
	}
	st := s.Stats()
	fmt.Printf("%s: region %v, dims %v, %d points (%d of %d bricks decoded)\n",
		dst, *boxArg, size, points, st.BricksDecoded, s.NumBricks())
	return nil
}

// queryCmd runs one pushdown query against a brick store: the same
// store.Query the serving layers expose, from the command line. The
// human report leads with the answer and ends with the pruning tally —
// how much of the field the statistics index resolved without decoding.
func queryCmd(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input .qozb brick store (required)")
	op := fs.String("op", "", "operation: gt, lt, range, min, max, or hist (required)")
	value := fs.Float64("value", math.NaN(), "threshold for -op gt/lt")
	low := fs.Float64("low", math.NaN(), "lower bound for -op range/hist (inclusive)")
	high := fs.Float64("high", math.NaN(), "upper bound for -op range/hist (exclusive)")
	bins := fs.Int("bins", 0, "histogram bin count for -op hist")
	boxArg := fs.String("box", "", "restrict to the box lo:hi,lo:hi,... (default: the whole field)")
	maxloc := fs.Int("maxloc", 0, "also list the first K matching coordinates (gt/lt/range)")
	asJSON := fs.Bool("json", false, "emit the raw query result as JSON")
	fs.Parse(args)
	if *in == "" || *op == "" {
		return fmt.Errorf("query requires -in and -op")
	}
	req := store.QueryRequest{Op: *op, Bins: *bins, MaxLocations: *maxloc}
	switch *op {
	case store.QueryGT, store.QueryLT:
		if math.IsNaN(*value) {
			return fmt.Errorf("-op %s requires -value", *op)
		}
		req.Value = *value
	case store.QueryRange, store.QueryHist:
		if math.IsNaN(*low) || math.IsNaN(*high) {
			return fmt.Errorf("-op %s requires -low and -high", *op)
		}
		req.Low, req.High = *low, *high
	}
	if *boxArg != "" {
		var err error
		if req.Lo, req.Hi, err = parseBox(*boxArg); err != nil {
			return err
		}
	}
	s, err := store.OpenFile(*in, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	res, err := s.Query(context.Background(), req)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	switch *op {
	case store.QueryGT, store.QueryLT, store.QueryRange:
		fmt.Printf("count: %d\n", res.Count)
		for _, loc := range res.Locations {
			fmt.Printf("at: %v\n", loc)
		}
		if res.Truncated {
			fmt.Printf("(%d more matches beyond -maxloc %d)\n", res.Count-int64(len(res.Locations)), *maxloc)
		}
	case store.QueryMin, store.QueryMax:
		if !res.Found {
			fmt.Println("no non-NaN points in the box")
		} else {
			fmt.Printf("%s: %g at %v\n", *op, res.Value, res.Arg)
		}
	case store.QueryHist:
		fmt.Printf("binned: %d  below: %d  above: %d  nan: %d\n",
			res.Count, res.Below, res.Above, res.NaNCount)
		if len(res.Bins) <= 32 {
			width := (req.High - req.Low) / float64(len(res.Bins))
			for i, n := range res.Bins {
				fmt.Printf("[%g, %g): %d\n", req.Low+float64(i)*width, req.Low+float64(i+1)*width, n)
			}
		} else {
			fmt.Printf("bins: %d (use -json for the values)\n", len(res.Bins))
		}
	}
	fmt.Printf("bricks: %d pruned, %d decoded of %d\n",
		res.BricksPruned, res.BricksDecoded, res.BricksTotal)
	return nil
}

// parseBox parses "lo:hi,lo:hi,..." into region bounds.
func parseBox(s string) (lo, hi []int, err error) {
	for _, part := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, nil, fmt.Errorf("invalid box extent %q (want lo:hi)", part)
		}
		l, err1 := strconv.Atoi(strings.TrimSpace(a))
		h, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || l < 0 || h <= l {
			return nil, nil, fmt.Errorf("invalid box extent %q (want 0 <= lo < hi)", part)
		}
		lo = append(lo, l)
		hi = append(hi, h)
	}
	if len(lo) == 0 {
		return nil, nil, fmt.Errorf("empty box")
	}
	return lo, hi, nil
}

func writeRawFloats(path string, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

func writeRawFloats64(path string, data []float64) error {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

// storeInfo prints a brick store's manifest without decoding any brick.
func storeInfo(path string) error {
	s, err := store.OpenFile(path, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	points := 1
	for _, d := range s.Dims() {
		points *= d
	}
	elem := 4
	if s.Float64() {
		elem = 8
	}
	fmt.Printf("format: brick store\ncodec: %s\ndtype: %s\ndims: %v\nbrick: %v\nbricks: %d\nerror bound: %.6g\ncompressed: %d bytes\nCR: %.1f\n",
		s.Codec().Name(), s.DType(), s.Dims(), s.BrickShape(), s.NumBricks(), s.ErrorBound(),
		st.Size(), float64(points*elem)/float64(st.Size()))
	if gen := s.Generation(); gen > 0 {
		fmt.Printf("mutable: generation %d\n", gen)
	}
	if agg := storeStats(s); agg != nil {
		fmt.Printf("stats: min %.6g  max %.6g  (%d of %d bricks indexed)\n",
			agg.Min, agg.Max, agg.Bricks, s.NumBricks())
	}
	return nil
}

// statsReport is the field-wide aggregate of a v5 store's per-brick
// statistics index: the value range and sample tallies of the original
// data, read from the manifest without decoding a brick.
type statsReport struct {
	// Bricks is how many bricks carry a valid statistics record.
	Bricks int     `json:"bricks"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Mean is the finite-sample mean, weighted across bricks; omitted if
	// the weighted sum overflows.
	Mean   float64 `json:"mean,omitempty"`
	Count  uint64  `json:"count"`
	Finite uint64  `json:"finite"`
	HasNaN bool    `json:"hasNaN,omitempty"`
	HasInf bool    `json:"hasInf,omitempty"`
}

// storeStats aggregates the per-brick statistics index into one
// field-wide summary, nil when the store carries no index (pre-v5) or no
// brick holds a finite sample. Min and Max are over finite original
// samples, so the JSON encoding never meets a non-finite number.
func storeStats(s *store.Store) *statsReport {
	if !s.HasBrickStats() {
		return nil
	}
	agg := statsReport{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for i := 0; i < s.NumBricks(); i++ {
		st, ok := s.BrickStats(i)
		if !ok {
			continue
		}
		agg.Bricks++
		agg.Count += st.Count
		agg.Finite += st.Finite
		agg.HasNaN = agg.HasNaN || st.HasNaN
		agg.HasInf = agg.HasInf || st.HasPosInf || st.HasNegInf
		if st.Finite > 0 {
			agg.Min = math.Min(agg.Min, st.Min)
			agg.Max = math.Max(agg.Max, st.Max)
			sum += st.Mean * float64(st.Finite)
		}
	}
	if agg.Finite == 0 {
		return nil
	}
	if m := sum / float64(agg.Finite); !math.IsInf(m, 0) && !math.IsNaN(m) {
		agg.Mean = m
	}
	return &agg
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input .qoz file (required)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON from headers alone, without decoding any payload")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info requires -in")
	}
	if *asJSON {
		return infoJSON(*in, os.Stdout)
	}
	// A brick store is described from its manifest alone; sniff the magic
	// before loading what may be a huge archive into memory.
	var head [8]byte
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	n, _ := io.ReadFull(f, head[:])
	f.Close()
	if store.IsStore(head[:n]) {
		return storeInfo(*in)
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	ctx := context.Background()
	f64 := isFloat64Payload(buf)
	if qoz.IsStream(buf) {
		hdr, err := qoz.NewDecoder(bytes.NewReader(buf)).Header()
		if err != nil {
			return err
		}
		name := hdr.CodecName
		if name == "" {
			name = fmt.Sprintf("unknown(id %d)", hdr.CodecID)
		}
		fmt.Printf("format: slab stream\ncodec: %s\nslabs: %d × %d rows\n",
			name, hdr.NumSlabs, hdr.SlabRows)
	} else {
		fmt.Printf("format: legacy container\n")
	}
	data, dims, err := qoz.Decode[float64](ctx, buf)
	if err != nil {
		return err
	}
	elemBytes := 4
	if f64 {
		elemBytes = 8
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	vr := hi - lo
	if vr < 0 {
		vr = 0
	}
	fmt.Printf("dims: %v\npoints: %d\ncompressed: %d bytes\nCR: %.1f\nvalue range: %.6g\n",
		dims, len(data), len(buf),
		float64(len(data)*elemBytes)/float64(len(buf)), vr)
	return nil
}

// infoReport is the -json layout of info: everything a serving layer
// needs to mount or describe an archive, read from headers alone.
type infoReport struct {
	Format          string  `json:"format"` // store, stream, envelope, or container
	Codec           string  `json:"codec,omitempty"`
	Float64         bool    `json:"float64"`
	DType           string  `json:"dtype"`
	Dims            []int   `json:"dims,omitempty"`
	Points          int     `json:"points,omitempty"`
	Brick           []int   `json:"brick,omitempty"`
	Bricks          int     `json:"bricks,omitempty"`
	Slabs           int     `json:"slabs,omitempty"`
	SlabRows        int     `json:"slabRows,omitempty"`
	ErrorBound      float64 `json:"errorBound,omitempty"`
	CompressedBytes int64   `json:"compressedBytes"`
	// Mutable and Generation describe v3 stores: Generation is the latest
	// committed generation this manifest reflects.
	Mutable    bool   `json:"mutable,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// FormatVersion is the store's on-disk format version; Levels and
	// BrickLevels appear only for v4 stores carrying progressive
	// level-offset tables (docs/FORMAT.md §1.5).
	FormatVersion int                  `json:"formatVersion,omitempty"`
	Levels        []levelReport        `json:"levels,omitempty"`
	BrickLevels   [][]store.LevelEntry `json:"brickLevels,omitempty"`
	// Stats is the field-wide aggregate of the per-brick statistics index
	// v5 stores record (docs/FORMAT.md §1.6); absent for older stores.
	Stats *statsReport `json:"stats,omitempty"`
}

// levelReport summarizes one progressive level across the whole store:
// what a level-L read materializes and what it costs to fetch.
type levelReport struct {
	Level  int `json:"level"`
	Stride int `json:"stride"`
	// GridPoints is how many points a level-L read of the full field
	// returns (the stride-aligned subgrid of dims).
	GridPoints int `json:"gridPoints"`
	// NewPoints is how many points the interpolation passes at this level
	// commit, summed over bricks (interp.CountLevelPoints per brick).
	NewPoints int `json:"newPoints"`
	// Bytes is the total compressed prefix a level-L read fetches, summed
	// over bricks carrying level tables (each brick truncated to its own
	// deepest level).
	Bytes int64 `json:"bytes"`
}

// storeLevels assembles the per-level summary and per-brick offset tables
// of a v4 store. Both are nil when no brick records a table.
func storeLevels(s *store.Store) ([]levelReport, [][]store.LevelEntry) {
	tables := make([][]store.LevelEntry, s.NumBricks())
	maxLevels := 0
	any := false
	for i := range tables {
		tables[i] = s.BrickLevels(i)
		if n := len(tables[i]); n > 0 {
			any = true
			if n > maxLevels {
				maxLevels = n
			}
		}
	}
	if !any {
		return nil, nil
	}
	dims, brick := s.Dims(), s.BrickShape()
	levels := make([]levelReport, 0, maxLevels)
	for l := maxLevels; l >= 1; l-- {
		stride := 1 << (l - 1)
		rep := levelReport{Level: l, Stride: stride, GridPoints: 1}
		for _, d := range qoz.CoarseDims(dims, stride) {
			rep.GridPoints *= d
		}
		forEachBrickDims(dims, brick, func(bd []int) {
			rep.NewPoints += interp.CountLevelPoints(bd, l)
		})
		for _, tab := range tables {
			if len(tab) == 0 {
				continue
			}
			// Entries run seed..1; the prefix for level l is the entry
			// with Level == min(l, deepest recorded level).
			eff := l
			if eff > tab[0].Level {
				eff = tab[0].Level
			}
			rep.Bytes += tab[len(tab)-eff].Bytes
		}
		levels = append(levels, rep)
	}
	return levels, tables
}

// forEachBrickDims visits the clipped shape of every brick in the store's
// grid (edge bricks are smaller than the nominal brick shape).
func forEachBrickDims(dims, brick []int, fn func(bd []int)) {
	nd := len(dims)
	idx := make([]int, nd)
	bd := make([]int, nd)
	for {
		for d := 0; d < nd; d++ {
			lo := idx[d] * brick[d]
			n := brick[d]
			if lo+n > dims[d] {
				n = dims[d] - lo
			}
			bd[d] = n
		}
		fn(bd)
		d := nd - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d]*brick[d] < dims[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// infoJSON describes an archive from its headers only — unlike the human
// info report it never decodes a payload, so it is safe to run against
// multi-terabyte archives (and is what a deployment script feeds qozd).
func infoJSON(path string, w io.Writer) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	rep := infoReport{CompressedBytes: st.Size()}

	var head [8]byte
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	n, _ := io.ReadFull(f, head[:])
	f.Close()
	switch {
	case store.IsStore(head[:n]):
		s, err := store.OpenFile(path, store.Options{})
		if err != nil {
			return err
		}
		defer s.Close()
		rep.Format = "store"
		rep.Codec = s.Codec().Name()
		rep.Float64 = s.Float64()
		rep.Dims = s.Dims()
		rep.Brick = s.BrickShape()
		rep.Bricks = s.NumBricks()
		rep.ErrorBound = s.ErrorBound()
		rep.Generation = s.Generation()
		rep.Mutable = rep.Generation > 0
		rep.FormatVersion = s.FormatVersion()
		rep.Levels, rep.BrickLevels = storeLevels(s)
		rep.Stats = storeStats(s)
		rep.Points = 1
		for _, d := range rep.Dims {
			rep.Points *= d
		}
	case qoz.IsStream(head[:n]):
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		hdr, err := qoz.NewDecoder(f).Header()
		if err != nil {
			return err
		}
		rep.Format = "stream"
		rep.Codec = hdr.CodecName
		if rep.Codec == "" {
			rep.Codec = fmt.Sprintf("unknown(id %d)", hdr.CodecID)
		}
		rep.Float64 = hdr.Float64
		rep.Dims = hdr.Dims
		rep.Points = hdr.Points()
		rep.Slabs = hdr.NumSlabs
		rep.SlabRows = hdr.SlabRows
		rep.ErrorBound = hdr.ErrorBound
	default:
		// Both checks below inspect only the archive's front; a bounded
		// prefix keeps the promise that -json never pulls a whole
		// multi-terabyte file through memory.
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		buf := make([]byte, min(st.Size(), 4096))
		_, err = io.ReadFull(f, buf)
		f.Close()
		if err != nil {
			return err
		}
		if qoz.IsFloat64Stream(buf) {
			rep.Format = "envelope"
			rep.Float64 = true
		} else {
			id, dims, err := container.PeekHeader(buf)
			if err != nil {
				return fmt.Errorf("%s: unrecognized format: %w", path, err)
			}
			rep.Format = "container"
			rep.Dims = dims
			rep.Points = 1
			for _, d := range dims {
				rep.Points *= d
			}
			if c, err := qoz.LookupID(id); err == nil {
				rep.Codec = c.Name()
			} else {
				rep.Codec = fmt.Sprintf("unknown(id %d)", id)
			}
		}
	}
	rep.DType = "float32"
	if rep.Float64 {
		rep.DType = "float64"
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid dimension %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func parseMode(s string) (qoz.Tuning, error) {
	switch strings.ToLower(s) {
	case "cr":
		return qoz.TuneCR, nil
	case "psnr":
		return qoz.TunePSNR, nil
	case "ssim":
		return qoz.TuneSSIM, nil
	case "ac":
		return qoz.TuneAC, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want cr, psnr, ssim, or ac)", s)
	}
}

func readFloats64(path string, dims []int) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if len(raw) != 8*n {
		return nil, fmt.Errorf("%s holds %d bytes; dims %v need %d", path, len(raw), dims, 8*n)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return data, nil
}

func readFloats(path string, dims []int) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if len(raw) != 4*n {
		return nil, fmt.Errorf("%s holds %d bytes; dims %v need %d", path, len(raw), dims, 4*n)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return data, nil
}
