package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"qoz/datagen"
)

func writeF32(t *testing.T, path string, data []float32) {
	t.Helper()
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressCycle(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(16, 16, 16)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)

	qozFile := filepath.Join(dir, "data.qoz")
	if err := compressCmd([]string{"-in", in, "-dims", "16,16,16", "-rel", "1e-3", "-out", qozFile}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	outFile := filepath.Join(dir, "out.f32")
	if err := decompressCmd([]string{"-in", qozFile, "-out", outFile}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	recon, err := readFloats(outFile, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vr := float64(0)
	lo, hi := ds.Data[0], ds.Data[0]
	for _, v := range ds.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	vr = float64(hi - lo)
	for i := range recon {
		if math.Abs(float64(recon[i])-float64(ds.Data[i])) > 1e-3*vr*(1+1e-12) {
			t.Fatalf("bound violated at %d", i)
		}
	}
	if err := infoCmd([]string{"-in", qozFile}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := compareCmd([]string{"-orig", in, "-recon", outFile, "-dims", "16,16,16"}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

func TestFloat64Cycle(t *testing.T) {
	dir := t.TempDir()
	n := 512
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 20)
	}
	in := filepath.Join(dir, "data.f64")
	raw := make([]byte, 8*n)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	qozFile := filepath.Join(dir, "data.qoz")
	if err := compressCmd([]string{"-in", in, "-dims", "512", "-rel", "1e-3", "-prec", "64", "-out", qozFile}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	outFile := filepath.Join(dir, "out.f64")
	if err := decompressCmd([]string{"-in", qozFile, "-out", outFile}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	recon, err := readFloats64(outFile, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(data[i]-recon[i]) > 2e-3*2 { // range 2, rel 1e-3
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestCompressValidation(t *testing.T) {
	if err := compressCmd([]string{"-dims", "4"}); err == nil {
		t.Error("missing -in accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "short.f32")
	writeF32(t, in, make([]float32, 3))
	if err := compressCmd([]string{"-in", in, "-dims", "4", "-rel", "1e-3"}); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := compressCmd([]string{"-in", in, "-dims", "3", "-rel", "1e-3", "-mode", "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestParseDims(t *testing.T) {
	dims, err := parseDims("100, 500,500")
	if err != nil || len(dims) != 3 || dims[0] != 100 {
		t.Fatalf("parseDims: %v %v", dims, err)
	}
	if _, err := parseDims("10,-3"); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := parseDims("abc"); err == nil {
		t.Error("non-numeric dim accepted")
	}
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"cr", "psnr", "ssim", "ac", "PSNR"} {
		if _, err := parseMode(s); err != nil {
			t.Errorf("parseMode(%q): %v", s, err)
		}
	}
	if _, err := parseMode("x"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPutGetExtractCycle(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(32, 32, 32)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)

	sf := filepath.Join(dir, "data.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "32,32,32", "-rel", "1e-3", "-brick", "16,16,16", "-out", sf}); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Full read back.
	full := filepath.Join(dir, "full.f32")
	if err := getCmd([]string{"-in", sf, "-out", full}); err != nil {
		t.Fatalf("get: %v", err)
	}
	recon, err := readFloats(full, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vr := rangeOf(ds.Data)
	for i := range recon {
		if e := math.Abs(float64(recon[i]) - float64(ds.Data[i])); e > 1e-3*vr*(1+1e-9) {
			t.Fatalf("point %d: error %g exceeds bound", i, e)
		}
	}

	// ROI extract must match the corresponding slice of the full read.
	roi := filepath.Join(dir, "roi.f32")
	if err := extractCmd([]string{"-in", sf, "-box", "4:12,16:32,0:8", "-out", roi}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	got, err := readFloats(roi, []int{8, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for z := 4; z < 12; z++ {
		for y := 16; y < 32; y++ {
			for x := 0; x < 8; x++ {
				want := recon[(z*32+y)*32+x]
				if got[k] != want {
					t.Fatalf("roi point (%d,%d,%d): %v != %v", z, y, x, got[k], want)
				}
				k++
			}
		}
	}

	// info must recognize the store.
	if err := infoCmd([]string{"-in", sf}); err != nil {
		t.Fatalf("info on store: %v", err)
	}
}

func TestPutFromStream(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(24, 24, 24)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)
	qozFile := filepath.Join(dir, "data.qoz")
	if err := compressCmd([]string{"-in", in, "-dims", "24,24,24", "-rel", "1e-3", "-out", qozFile}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	sf := filepath.Join(dir, "rebricked.qozb")
	if err := putCmd([]string{"-in", qozFile, "-brick", "8,8,8", "-out", sf}); err != nil {
		t.Fatalf("put from stream: %v", err)
	}
	full := filepath.Join(dir, "full.f32")
	if err := getCmd([]string{"-in", sf, "-out", full}); err != nil {
		t.Fatalf("get: %v", err)
	}
	recon, err := readFloats(full, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	// Re-bricking re-compresses the reconstruction: within 2x the bound.
	vr := rangeOf(ds.Data)
	for i := range recon {
		if e := math.Abs(float64(recon[i]) - float64(ds.Data[i])); e > 2*1e-3*vr*(1+1e-9) {
			t.Fatalf("point %d: error %g exceeds 2x bound", i, e)
		}
	}
}

func TestParseBox(t *testing.T) {
	lo, hi, err := parseBox("0:32, 128:256,4:8")
	if err != nil || len(lo) != 3 || lo[1] != 128 || hi[2] != 8 {
		t.Fatalf("parseBox: %v %v %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "8:4", "-1:4", "a:b"} {
		if _, _, err := parseBox(bad); err == nil {
			t.Errorf("parseBox(%q) accepted", bad)
		}
	}
}

func rangeOf(a []float32) float64 {
	lo, hi := a[0], a[0]
	for _, v := range a {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return float64(hi - lo)
}

// TestInfoJSON verifies the -json report is produced from headers alone
// and carries the fields a serving layer needs.
func TestInfoJSON(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(16, 16, 16)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)

	qozFile := filepath.Join(dir, "data.qoz")
	if err := compressCmd([]string{"-in", in, "-dims", "16,16,16", "-rel", "1e-3", "-out", qozFile}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	storeFile := filepath.Join(dir, "data.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "16,16,16", "-rel", "1e-3", "-brick", "8,8,8", "-out", storeFile}); err != nil {
		t.Fatalf("put: %v", err)
	}

	report := func(path string) infoReport {
		t.Helper()
		var buf bytes.Buffer
		if err := infoJSON(path, &buf); err != nil {
			t.Fatalf("infoJSON(%s): %v", path, err)
		}
		var rep infoReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatalf("infoJSON(%s) emitted unparseable JSON: %v", path, err)
		}
		return rep
	}

	if rep := report(qozFile); rep.Format != "stream" || rep.Points != 4096 ||
		rep.Codec == "" || rep.Slabs == 0 || rep.ErrorBound <= 0 {
		t.Fatalf("stream report incomplete: %+v", rep)
	}
	rep := report(storeFile)
	if rep.Format != "store" || rep.Bricks != 8 || len(rep.Brick) != 3 ||
		rep.Codec == "" || rep.ErrorBound <= 0 || rep.CompressedBytes == 0 {
		t.Fatalf("store report incomplete: %+v", rep)
	}

	// A fresh QoZ store is format v5 and reports its progressive levels:
	// deepest first, ending at level 1 (the full field), with the fetch
	// cost growing as the level drops.
	if rep.FormatVersion != 5 {
		t.Fatalf("fresh store reports format v%d, want v5", rep.FormatVersion)
	}
	if len(rep.Levels) == 0 {
		t.Fatal("v5 store report carries no levels")
	}
	last := rep.Levels[len(rep.Levels)-1]
	if last.Level != 1 || last.Stride != 1 || last.GridPoints != rep.Points {
		t.Fatalf("level list must end at level 1 covering the field, got %+v", last)
	}
	for i, lv := range rep.Levels {
		if lv.Stride != 1<<(lv.Level-1) {
			t.Errorf("level %d reports stride %d", lv.Level, lv.Stride)
		}
		// NewPoints may be 0 at deep levels (stride beyond the brick shape:
		// anchors already cover the grid), but never negative, and the
		// finest level always commits points.
		if lv.Bytes <= 0 || lv.GridPoints <= 0 || lv.NewPoints < 0 {
			t.Errorf("level %d report has empty counters: %+v", lv.Level, lv)
		}
		if i > 0 {
			prev := rep.Levels[i-1]
			if lv.Level != prev.Level-1 {
				t.Errorf("levels not contiguous: %d after %d", lv.Level, prev.Level)
			}
			if lv.Bytes < prev.Bytes || lv.GridPoints < prev.GridPoints {
				t.Errorf("level %d cheaper than deeper level %d", lv.Level, prev.Level)
			}
		}
	}
	if last.NewPoints == 0 {
		t.Error("level 1 commits no points")
	}
	if last.Bytes > rep.CompressedBytes {
		t.Errorf("level-1 prefix %d bytes exceeds the file size %d", last.Bytes, rep.CompressedBytes)
	}
	if len(rep.BrickLevels) != rep.Bricks {
		t.Fatalf("%d brick level tables for %d bricks", len(rep.BrickLevels), rep.Bricks)
	}
	for i, tab := range rep.BrickLevels {
		if len(tab) == 0 {
			t.Fatalf("brick %d has no level table", i)
		}
		if tab[len(tab)-1].Level != 1 {
			t.Errorf("brick %d table does not end at level 1: %+v", i, tab)
		}
		for j := 1; j < len(tab); j++ {
			if tab[j].Level != tab[j-1].Level-1 || tab[j].Bytes < tab[j-1].Bytes {
				t.Errorf("brick %d table not a descending prefix chain: %+v", i, tab)
				break
			}
		}
	}
}

// TestPutGetExtractFloat64Cycle pins the double-precision store CLI path:
// a raw f64 file put with -prec 64 must build a float64 store, get must
// write raw f64 back within the bound, extract must slice it
// bit-identically, and info -json must name the dtype.
func TestPutGetExtractFloat64Cycle(t *testing.T) {
	dir := t.TempDir()
	dims := []int{16, 16, 16}
	n := 16 * 16 * 16
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/40) + 1e-9*math.Cos(float64(i)/3)
	}
	in := filepath.Join(dir, "data.f64")
	raw := make([]byte, 8*n)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	sf := filepath.Join(dir, "data.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "16,16,16", "-abs", "1e-7", "-prec", "64", "-brick", "8,8,8", "-out", sf}); err != nil {
		t.Fatalf("put -prec 64: %v", err)
	}

	full := filepath.Join(dir, "full.f64")
	if err := getCmd([]string{"-in", sf, "-out", full}); err != nil {
		t.Fatalf("get: %v", err)
	}
	recon, err := readFloats64(full, dims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recon {
		if e := math.Abs(recon[i] - data[i]); e > 1e-7*(1+1e-9) {
			t.Fatalf("point %d: error %g exceeds bound (float32 narrowing would be ~1e-8 of magnitude)", i, e)
		}
	}

	roi := filepath.Join(dir, "roi.f64")
	if err := extractCmd([]string{"-in", sf, "-box", "2:10,4:12,0:8", "-out", roi}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	got, err := readFloats64(roi, []int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for z := 2; z < 10; z++ {
		for y := 4; y < 12; y++ {
			for x := 0; x < 8; x++ {
				want := recon[(z*16+y)*16+x]
				if got[k] != want {
					t.Fatalf("roi point (%d,%d,%d): %v != %v (must be bit-identical)", z, y, x, got[k], want)
				}
				k++
			}
		}
	}

	var buf bytes.Buffer
	if err := infoJSON(sf, &buf); err != nil {
		t.Fatalf("infoJSON: %v", err)
	}
	var rep infoReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Format != "store" || !rep.Float64 || rep.DType != "float64" {
		t.Fatalf("float64 store report: %+v", rep)
	}
	if err := infoCmd([]string{"-in", sf}); err != nil {
		t.Fatalf("info on float64 store: %v", err)
	}
}

// TestPutFromFloat64Stream re-bricks a double-precision slab stream via
// the CLI — compress -prec 64, then put straight from the .qoz file.
func TestPutFromFloat64Stream(t *testing.T) {
	dir := t.TempDir()
	n := 24 * 24
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Cos(float64(i) / 15)
	}
	in := filepath.Join(dir, "data.f64")
	raw := make([]byte, 8*n)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	qozFile := filepath.Join(dir, "data.qoz")
	if err := compressCmd([]string{"-in", in, "-dims", "24,24", "-rel", "1e-4", "-prec", "64", "-out", qozFile}); err != nil {
		t.Fatalf("compress -prec 64: %v", err)
	}
	sf := filepath.Join(dir, "rebricked.qozb")
	if err := putCmd([]string{"-in", qozFile, "-brick", "8,8", "-out", sf}); err != nil {
		t.Fatalf("put from float64 stream: %v", err)
	}
	full := filepath.Join(dir, "full.f64")
	if err := getCmd([]string{"-in", sf, "-out", full}); err != nil {
		t.Fatalf("get: %v", err)
	}
	recon, err := readFloats64(full, []int{24, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Re-bricking re-compresses the reconstruction: within 2x the bound.
	vr := 2.0 // cos range
	for i := range recon {
		if e := math.Abs(recon[i] - data[i]); e > 2*1e-4*vr*(1+1e-9) {
			t.Fatalf("point %d: error %g exceeds 2x bound", i, e)
		}
	}
}

// TestQueryCmdAndInfoStats: the query subcommand answers predicates over
// a store, and info aggregates the statistics index the queries prune
// from — the recorded min/max must be exactly the original data's,
// because statistics are computed before compression.
func TestQueryCmdAndInfoStats(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(16, 16, 16)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)
	sf := filepath.Join(dir, "data.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "16,16,16", "-rel", "1e-3", "-brick", "8,8,8", "-out", sf}); err != nil {
		t.Fatalf("put: %v", err)
	}

	lo, hi := ds.Data[0], ds.Data[0]
	for _, v := range ds.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}

	// Every operation runs clean from the CLI, -json included.
	mid := (float64(lo) + float64(hi)) / 2
	for _, args := range [][]string{
		{"-in", sf, "-op", "gt", "-value", fmt.Sprint(mid)},
		{"-in", sf, "-op", "lt", "-value", fmt.Sprint(mid), "-maxloc", "3"},
		{"-in", sf, "-op", "range", "-low", fmt.Sprint(float64(lo)), "-high", fmt.Sprint(mid), "-box", "0:8,4:12,0:16"},
		{"-in", sf, "-op", "min"},
		{"-in", sf, "-op", "max", "-json"},
		{"-in", sf, "-op", "hist", "-low", fmt.Sprint(float64(lo)), "-high", fmt.Sprint(float64(hi) + 1e-6), "-bins", "8"},
	} {
		if err := queryCmd(args); err != nil {
			t.Errorf("query %v: %v", args, err)
		}
	}

	// Missing or malformed parameters fail before the store is touched.
	for _, args := range [][]string{
		{"-in", sf},
		{"-op", "gt", "-value", "1"},
		{"-in", sf, "-op", "gt"},
		{"-in", sf, "-op", "range", "-low", "1"},
		{"-in", sf, "-op", "hist", "-low", "0", "-high", "1", "-bins", "0"},
		{"-in", sf, "-op", "gt", "-value", "1", "-box", "8:4"},
	} {
		if err := queryCmd(args); err == nil {
			t.Errorf("query %v accepted", args)
		}
	}

	// info -json reports the field-wide aggregate of the index.
	var buf bytes.Buffer
	if err := infoJSON(sf, &buf); err != nil {
		t.Fatalf("infoJSON: %v", err)
	}
	var rep infoReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("fresh v5 store reports no stats aggregate")
	}
	if rep.Stats.Bricks != rep.Bricks {
		t.Errorf("stats cover %d of %d bricks", rep.Stats.Bricks, rep.Bricks)
	}
	if rep.Stats.Min != float64(lo) || rep.Stats.Max != float64(hi) {
		t.Errorf("stats range [%g, %g], original data [%g, %g]", rep.Stats.Min, rep.Stats.Max, lo, hi)
	}
	if rep.Stats.Count != uint64(len(ds.Data)) || rep.Stats.Finite != rep.Stats.Count {
		t.Errorf("stats tallies count=%d finite=%d, want %d finite points", rep.Stats.Count, rep.Stats.Finite, len(ds.Data))
	}
	if rep.Stats.HasNaN || rep.Stats.HasInf {
		t.Errorf("stats flag non-finite values in an all-finite field: %+v", rep.Stats)
	}
	if rep.Stats.Mean < float64(lo) || rep.Stats.Mean > float64(hi) {
		t.Errorf("stats mean %g outside the value range", rep.Stats.Mean)
	}
}

// TestMutableStoreCycle: put -mutable, append steps, read them back with
// get, compact, and confirm the data and manifest survive every stage.
func TestMutableStoreCycle(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.NYX(4, 16, 16)
	in := filepath.Join(dir, "data.f32")
	writeF32(t, in, ds.Data)
	storeFile := filepath.Join(dir, "data.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "4,16,16", "-abs", "1e-3",
		"-brick", "2,8,8", "-mutable", "-out", storeFile}); err != nil {
		t.Fatalf("put -mutable: %v", err)
	}

	// Append two more steps (reuse the first two planes of the dataset).
	stepFile := filepath.Join(dir, "steps.f32")
	writeF32(t, stepFile, ds.Data[:2*16*16])
	if err := appendCmd([]string{"-store", storeFile, "-in", stepFile}); err != nil {
		t.Fatalf("append: %v", err)
	}

	// info -json must describe the grown mutable store.
	var rep infoReport
	var buf bytes.Buffer
	if err := infoJSON(storeFile, &buf); err != nil {
		t.Fatalf("info -json: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Mutable || rep.Generation == 0 {
		t.Fatalf("info -json does not mark the store mutable: %+v", rep)
	}
	if len(rep.Dims) != 3 || rep.Dims[0] != 6 {
		t.Fatalf("info -json dims %v, want [6 16 16]", rep.Dims)
	}

	check := func(label string) {
		t.Helper()
		outFile := filepath.Join(dir, label+".f32")
		if err := getCmd([]string{"-in", storeFile, "-out", outFile}); err != nil {
			t.Fatalf("%s get: %v", label, err)
		}
		recon, err := readFloats(outFile, []int{6, 16, 16})
		if err != nil {
			t.Fatal(err)
		}
		want := append(append([]float32(nil), ds.Data...), ds.Data[:2*16*16]...)
		for i := range recon {
			if math.Abs(float64(recon[i])-float64(want[i])) > 1e-3+1e-9 {
				t.Fatalf("%s: bound violated at %d: %v vs %v", label, i, recon[i], want[i])
			}
		}
	}
	check("grown")

	if err := compactCmd([]string{"-store", storeFile}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	check("compacted")

	// Appending to a write-once v2 store must fail with guidance.
	v2 := filepath.Join(dir, "v2.qozb")
	if err := putCmd([]string{"-in", in, "-dims", "4,16,16", "-abs", "1e-3", "-out", v2}); err != nil {
		t.Fatal(err)
	}
	if err := appendCmd([]string{"-store", v2, "-in", stepFile}); err == nil {
		t.Fatal("append to a v2 store did not fail")
	}
}
