// Command promlint validates a Prometheus text-format exposition read
// from stdin — the qoz/obs.LintExposition rules: HELP/TYPE on every
// family, no duplicate series, sorted labels and series, well-formed
// histograms. CI pipes live /metrics scrapes through it so a
// nondeterministic or malformed exposition fails the build, not the
// on-call.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint
//
// Exits 0 on a clean exposition, 1 with the first offending line named.
package main

import (
	"fmt"
	"io"
	"os"

	"qoz/obs"
)

func main() {
	text, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: read stdin: %v\n", err)
		os.Exit(1)
	}
	if err := obs.LintExposition(string(text)); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
}
