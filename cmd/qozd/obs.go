// Request observability for both qozd roles: every request runs under a
// trace rooted here (shard fan-outs and store stage timings attach to it
// via context), latency lands in Prometheus histograms rendered into
// /metrics, and a structured slog line records the outcome. The last
// -trace-ring completed traces are served by GET /debug/traces, and
// -slow-request promotes slow traces to warning log lines with their full
// span breakdown.
package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"qoz/obs"
	"qoz/store"
)

// instrumentOptions configures one role's instrument.
type instrumentOptions struct {
	// Logger receives request log lines; nil discards them (tests).
	Logger *slog.Logger
	// SlowRequest promotes requests at least this slow to a warning log
	// line carrying the trace's span breakdown; 0 disables.
	SlowRequest time.Duration
	// TraceCapacity bounds the ring of completed traces behind
	// /debug/traces (<= 0 selects 256).
	TraceCapacity int
}

// instrument is the per-role observability state: the trace ring and the
// latency histograms both roles render into their /metrics.
type instrument struct {
	rec    *obs.Recorder
	logger *slog.Logger
	slow   time.Duration
	// reqHist is qozd_request_duration_seconds{route,status}: every
	// request, including errors and shed requests, by coarse route class.
	reqHist *obs.HistogramVec
	// stageHist is qozd_store_stage_seconds{stage}: per-brick fetch and
	// decode timings reported by the store's stage observer. Gateway
	// processes hold no store, so theirs stays empty and unrendered.
	stageHist *obs.HistogramVec
}

func newInstrument(opts instrumentOptions) *instrument {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &instrument{
		rec:    obs.NewRecorder(opts.TraceCapacity),
		logger: logger,
		slow:   opts.SlowRequest,
		reqHist: obs.NewHistogramVec("qozd_request_duration_seconds",
			"request latency by route class and status", []string{"route", "status"}, obs.DefBuckets),
		stageHist: obs.NewHistogramVec("qozd_store_stage_seconds",
			"per-brick store stage latency (payload fetch, decode)", []string{"stage"}, obs.DefBuckets),
	}
}

// routeLabel buckets a request path into a bounded route class, so the
// {route, status} histogram cardinality stays fixed no matter what paths
// clients probe.
func routeLabel(path string) string {
	switch {
	case path == "/v1/fields":
		return "fields"
	case strings.HasPrefix(path, "/v1/fields/"):
		if strings.HasSuffix(path, "/region") {
			return "region"
		}
		if strings.HasSuffix(path, "/query") {
			return "query"
		}
		return "field"
	case path == "/metrics":
		return "metrics"
	case path == "/healthz" || path == "/readyz":
		return "probe"
	case path == "/debug/traces":
		return "traces"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	}
	return "other"
}

// statusWriter captures the status code and body bytes a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// stageAcc accumulates one request's store stage callbacks. Brick work
// runs on concurrent workers, so the counters are atomics; the totals are
// annotated onto the root span when the request finishes, and each timed
// stage also lands in the role's stage histogram.
type stageAcc struct {
	hist                   *obs.HistogramVec
	fetchNS, decodeNS      atomic.Int64
	fetches, decodes, hits atomic.Int64
	fetchBytes, hitBytes   atomic.Int64
	prunes, prunedBytes    atomic.Int64
}

func (a *stageAcc) observe(st store.Stage, d time.Duration, bytes int64) {
	switch st {
	case store.StageFetch:
		a.fetches.Add(1)
		a.fetchNS.Add(int64(d))
		a.fetchBytes.Add(bytes)
		a.hist.Observe(d.Seconds(), st.String())
	case store.StageDecode:
		a.decodes.Add(1)
		a.decodeNS.Add(int64(d))
		a.hist.Observe(d.Seconds(), st.String())
	case store.StageCacheHit:
		a.hits.Add(1)
		a.hitBytes.Add(bytes)
	case store.StageStatPrune:
		a.prunes.Add(1)
		a.prunedBytes.Add(bytes)
		a.hist.Observe(d.Seconds(), st.String())
	}
}

// annotate writes the accumulated stage totals onto a span (normally the
// request's root). Requests that never touched a store annotate nothing.
func (a *stageAcc) annotate(sp *obs.Span) {
	if a.fetches.Load() == 0 && a.decodes.Load() == 0 && a.hits.Load() == 0 && a.prunes.Load() == 0 {
		return
	}
	ms := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64)
	}
	sp.Annotate("store.fetches", strconv.FormatInt(a.fetches.Load(), 10))
	sp.Annotate("store.fetchMs", ms(a.fetchNS.Load()))
	sp.Annotate("store.fetchBytes", strconv.FormatInt(a.fetchBytes.Load(), 10))
	sp.Annotate("store.decodes", strconv.FormatInt(a.decodes.Load(), 10))
	sp.Annotate("store.decodeMs", ms(a.decodeNS.Load()))
	sp.Annotate("store.cacheHits", strconv.FormatInt(a.hits.Load(), 10))
	sp.Annotate("store.cacheHitBytes", strconv.FormatInt(a.hitBytes.Load(), 10))
	if a.prunes.Load() > 0 {
		sp.Annotate("store.pruned", strconv.FormatInt(a.prunes.Load(), 10))
		sp.Annotate("store.prunedBytes", strconv.FormatInt(a.prunedBytes.Load(), 10))
	}
}

// serve wraps one request in the full observability envelope: a root
// trace span (trace id = the request's correlation id), a stage observer
// when the role reads stores, the latency histogram, and the request log
// line. handle runs the role's guard and mux and returns the tenant the
// guard resolved ("" for probes).
func (ins *instrument) serve(w http.ResponseWriter, r *http.Request, id string, stages bool,
	handle func(http.ResponseWriter, *http.Request) string) {
	route := routeLabel(r.URL.Path)
	ctx, root := ins.rec.StartTrace(r.Context(), id, r.Method+" "+route)
	var acc *stageAcc
	if stages {
		acc = &stageAcc{hist: ins.stageHist}
		ctx = store.WithStageObserver(ctx, acc.observe)
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	tenant := handle(sw, r.WithContext(ctx))
	dur := time.Since(start)

	status := sw.statusCode()
	root.Annotate("route", route)
	root.Annotate("status", strconv.Itoa(status))
	if tenant != "" {
		root.Annotate("tenant", tenant)
	}
	if acc != nil {
		acc.annotate(root)
	}
	root.End()
	ins.reqHist.Observe(dur.Seconds(), route, strconv.Itoa(status))

	attrs := []any{
		slog.String("requestId", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", dur),
	}
	if tenant != "" {
		attrs = append(attrs, slog.String("tenant", tenant))
	}
	if ins.slow > 0 && dur >= ins.slow {
		// A slow request carries its whole span breakdown, so the log line
		// alone answers "where did the time go" without a /debug/traces
		// round trip.
		if t := root.TraceData(); t != nil {
			attrs = append(attrs, slog.Any("spans", t.Spans))
		}
		ins.logger.Warn("slow request", attrs...)
		return
	}
	if route == "probe" {
		// Probe traffic is high-rate and boring; keep it out of the default
		// Info stream but reachable with a debug-level handler.
		ins.logger.Debug("request", attrs...)
		return
	}
	ins.logger.Info("request", attrs...)
}

// handleTraces serves the trace ring as JSON, newest first:
//
//	GET /debug/traces?n=50&min=25ms
//
// n bounds how many traces return (default 50), min keeps only traces at
// least that long. The endpoint sits behind the same guard as /v1/*.
func (ins *instrument) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		x, err := strconv.Atoi(v)
		if err != nil || x <= 0 {
			jsonError(w, r, http.StatusBadRequest, "invalid n %q (want a positive integer)", v)
			return
		}
		n = x
	}
	var min time.Duration
	if v := r.URL.Query().Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			jsonError(w, r, http.StatusBadRequest, "invalid min %q (want a duration like 25ms)", v)
			return
		}
		min = d
	}
	traces := ins.rec.Snapshot(n, min)
	if traces == nil {
		traces = []*obs.Trace{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"total":  ins.rec.Total(),
		"traces": traces,
	})
}

// registerPprof mounts net/http/pprof's handlers on a role's own mux
// (qozd never serves http.DefaultServeMux), behind the same guard as the
// /v1 endpoints. Opt-in via -pprof: profiling endpoints reveal enough
// about a process that they should not be ambiently on.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// buildLogger resolves -log-format into a slog logger on stderr. It also
// becomes the process default, so legacy log.Printf lines share the
// stream and the format.
func buildLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}
