package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qoz/cluster"
	"qoz/store"
)

// startShards spins n ordinary qozd servers, each mounting every store in
// mounts (data is fully replicated; the placement decides which shard
// serves which brick). wrap, when non-nil, wraps each shard's handler —
// tests use it to count, capture, or block shard traffic.
func startShards(t *testing.T, mounts []mount, n int, opts serverOptions,
	wrap func(i int, h http.Handler) http.Handler) ([]*httptest.Server, []*server) {
	t.Helper()
	shards := make([]*httptest.Server, n)
	srvs := make([]*server, n)
	for i := 0; i < n; i++ {
		srv, err := newServer(mounts, opts)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		t.Cleanup(srv.Close)
		h := http.Handler(srv)
		if wrap != nil {
			h = wrap(i, h)
		}
		shards[i] = httptest.NewServer(h)
		t.Cleanup(shards[i].Close)
		srvs[i] = srv
	}
	return shards, srvs
}

func shardURLs(shards []*httptest.Server) []string {
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.URL
	}
	return urls
}

// startGateway builds a gateway over the shards and serves it.
func startGateway(t *testing.T, opts gatewayOptions) (*gateway, *httptest.Server) {
	t.Helper()
	gw, err := newGateway(opts)
	if err != nil {
		t.Fatalf("newGateway: %v", err)
	}
	ts := httptest.NewServer(gw)
	t.Cleanup(ts.Close)
	return gw, ts
}

// TestClusterGatewayStitch is the core acceptance test: a region spanning
// shard-ownership boundaries read through the gateway must be
// byte-identical to the same read against a single node holding the whole
// store — raw and JSON, float32 and float64 — with the same ETag, and the
// fan-out must actually have used more than one shard.
func TestClusterGatewayStitch(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	p64, _, _ := buildStoreFile64(t, dir)
	mounts := []mount{{name: "nyx", target: p32}, {name: "wave", target: p64}}
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	for _, tc := range []struct {
		field, region string
	}{
		// 32^3 field of 8^3 bricks: [1,31)^3 crosses every brick boundary.
		{"nyx", "lo=1,2,3&hi=31,30,29"},
		// 16^3 float64 field of 8^3 bricks (with a NaN in brick 0).
		{"wave", "lo=0,1,2&hi=15,16,14"},
	} {
		for _, format := range []string{"", "&format=json"} {
			url := "/v1/fields/" + tc.field + "/region?" + tc.region + format
			wantResp, want := get(t, shards[0].URL+url)
			gotResp, got := get(t, gts.URL+url)
			if gotResp.StatusCode != http.StatusOK {
				t.Fatalf("gateway %s: %s: %s", url, gotResp.Status, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: gateway body differs from single-node body (%d vs %d bytes)", url, len(got), len(want))
			}
			if ge, se := gotResp.Header.Get("ETag"), wantResp.Header.Get("ETag"); ge != se {
				t.Errorf("%s: gateway ETag %s, single-node ETag %s", url, ge, se)
			}
			for _, h := range []string{"X-Qoz-Dims", "X-Qoz-Dtype", "X-Qoz-Error-Bound"} {
				if gotResp.Header.Get(h) != wantResp.Header.Get(h) {
					t.Errorf("%s: header %s: gateway %q, single-node %q", url, h, gotResp.Header.Get(h), wantResp.Header.Get(h))
				}
			}
		}
	}

	// The reads must have fanned out: both shards served sub-reads.
	gw.trafficMu.Lock()
	served := 0
	for _, tr := range gw.traffic {
		if tr.Reads > 0 {
			served++
		}
	}
	gw.trafficMu.Unlock()
	if served != 2 {
		t.Errorf("%d shards served sub-reads, want 2 (region should span ownership boundaries)", served)
	}

	// Conditional GET through the gateway: revalidating with the gateway's
	// ETag answers 304.
	url := gts.URL + "/v1/fields/nyx/region?lo=1,2,3&hi=31,30,29"
	resp, _ := get(t, url)
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation answered %d, want 304", resp2.StatusCode)
	}
}

// TestClusterGatewayFailover kills one of two shards. With failover
// enabled the gateway must still produce byte-identical responses; with
// failover disabled (-fanout-attempts 1) it must answer a clean, prompt
// 502 with Retry-After — never a hang or a partially-stitched body.
func TestClusterGatewayFailover(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	const region = "/v1/fields/nyx/region?lo=0,0,0&hi=32,32,32"
	_, want := get(t, shards[0].URL+region)

	gwFail, tsFail := startGateway(t, gatewayOptions{Shards: shardURLs(shards), Attempts: 2})
	gwNone, tsNone := startGateway(t, gatewayOptions{Shards: shardURLs(shards), Attempts: 1})

	shards[1].Close() // kill one shard; its bricks' owner is now unreachable

	resp, got := get(t, tsFail.URL+region)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover read: %s: %s", resp.Status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover read differs from pre-kill single-node read")
	}
	if gwFail.retries.Load() == 0 {
		t.Error("failover read reported zero retries; the dead shard owned nothing?")
	}

	start := time.Now()
	resp, body := get(t, tsNone.URL+region)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("no-failover read with a dead shard: %d, want 502 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("502 without Retry-After")
	}
	var errBody struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatalf("502 body is not the JSON error shape: %s", body)
	}
	if errBody.RequestID == "" {
		t.Error("502 body missing requestId")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("502 took %v; a dead shard must fail fast, not hang", elapsed)
	}
	_ = gwNone
}

// TestClusterGatewaySingleFlight piles N identical concurrent requests on
// one hot region while the shards are blocked, then releases them: the
// gateway must run exactly one fan-out, every client must get the full
// correct bytes, and the shards must have seen one fan-out's worth of
// sub-reads — not N.
func TestClusterGatewaySingleFlight(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}

	release := make(chan struct{})
	var shardRegionReqs atomic.Int64
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20},
		func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/region") {
					shardRegionReqs.Add(1)
					<-release
				}
				h.ServeHTTP(w, r)
			})
		})
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	const region = "/v1/fields/nyx/region?lo=0,0,0&hi=16,16,16"
	const clients = 8
	bodies := make([][]byte, clients)
	status := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(gts.URL + region)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			status[i] = resp.StatusCode
		}()
	}
	// Wait until the whole herd is coalesced behind the one blocked leader,
	// then let the shards answer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := gw.flight.Stats()
		if st.Leads == 1 && st.Coalesced == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("herd never coalesced: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if st := gw.flight.Stats(); st.Leads != 1 {
		t.Errorf("%d fan-outs for %d identical concurrent requests, want 1", st.Leads, clients)
	}
	for i := 1; i < clients; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, status[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
	if want := 16 * 16 * 16 * 4; len(bodies[0]) != want {
		t.Fatalf("body is %d bytes, want %d", len(bodies[0]), want)
	}
	// The shards saw exactly one fan-out's sub-reads.
	if got, want := shardRegionReqs.Load(), gw.subReads.Load(); got != want {
		t.Errorf("shards saw %d region requests, gateway planned %d sub-reads", got, want)
	}
	if shardRegionReqs.Load() >= clients {
		t.Errorf("shards saw %d region requests for %d coalesced clients; single-flight did nothing", shardRegionReqs.Load(), clients)
	}
}

// TestClusterTenantRateLimit puts named tenants behind token buckets at
// the gateway: the throttled tenant's second burst request gets 429 with
// Retry-After while another tenant keeps flowing, and the 429 shows up in
// the per-tenant metric.
func TestClusterTenantRateLimit(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	_, gts := startGateway(t, gatewayOptions{
		Shards: shardURLs(shards),
		Guard: guardOptions{
			Tenants: []tenantCred{
				{name: "alice", token: "a-tok", rate: cluster.RateConfig{RPS: 0.1, Burst: 1}},
				{name: "bob", token: "b-tok"},
			},
		},
	})

	do := func(token string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := do("a-tok"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice's first request: %d, want 200", resp.StatusCode)
	}
	resp := do("a-tok")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice's burst-exceeding request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Bob's bucket is independent of alice's dry one.
	for i := 0; i < 3; i++ {
		if resp := do("b-tok"); resp.StatusCode != http.StatusOK {
			t.Fatalf("bob's request %d: %d, want 200", i, resp.StatusCode)
		}
	}
	// No token at all: 401, not 429.
	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields", nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless request: %d, want 401", r2.StatusCode)
	}

	mreq, _ := http.NewRequest(http.MethodGet, gts.URL+"/metrics", nil)
	mreq.Header.Set("Authorization", "Bearer b-tok")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `qozd_rate_limited_total{tenant="alice"} 1`) {
		t.Errorf("metrics missing alice's 429:\n%s", metrics)
	}
}

// TestClusterShardAuth verifies the gateway's shard-facing credential: a
// token-protected fleet serves through a gateway holding the shard token,
// and the client's own tenant token never leaks through to shards.
func TestClusterShardAuth(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	shards, _ := startShards(t, mounts, 2,
		serverOptions{CacheBytes: 32 << 20, Guard: guardOptions{AuthToken: "fleet-secret"}}, nil)
	_, gts := startGateway(t, gatewayOptions{
		Shards:     shardURLs(shards),
		ShardToken: "fleet-secret",
		Guard:      guardOptions{AuthToken: "client-secret"},
	})

	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=4,4,4", nil)
	req.Header.Set("Authorization", "Bearer client-secret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated read through token-protected fleet: %s: %s", resp.Status, body)
	}
	if len(body) != 4*4*4*4 {
		t.Fatalf("body is %d bytes, want %d", len(body), 4*4*4*4)
	}
}

// TestClusterRequestID pins request-id correlation end to end: a
// client-supplied id is echoed by the gateway and presented to every
// shard; an absent or hostile id is replaced with a generated one; error
// bodies carry the id.
func TestClusterRequestID(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}

	var mu sync.Mutex
	seen := map[string]bool{} // ids observed at the shards
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20},
		func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/region") {
					mu.Lock()
					seen[r.Header.Get("X-Qoz-Request-Id")] = true
					mu.Unlock()
				}
				h.ServeHTTP(w, r)
			})
		})
	_, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=32,32,32", nil)
	req.Header.Set("X-Qoz-Request-Id", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Qoz-Request-Id"); got != "trace-abc-123" {
		t.Errorf("gateway echoed id %q, want trace-abc-123", got)
	}
	mu.Lock()
	propagated := seen["trace-abc-123"]
	mu.Unlock()
	if !propagated {
		t.Error("shards never saw the client's request id")
	}

	// No id supplied: the gateway generates one (16 hex chars).
	resp2, _ := get(t, gts.URL+"/v1/fields")
	gen := resp2.Header.Get("X-Qoz-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Errorf("generated id %q, want 16 hex chars", gen)
	}

	// A hostile id is dropped, not propagated.
	req3, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields", nil)
	req3.Header.Set("X-Qoz-Request-Id", "bad id{}%")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Qoz-Request-Id"); got == "bad id{}%" || got == "" {
		t.Errorf("hostile id handled as %q, want a fresh generated id", got)
	}

	// Error bodies carry the id.
	req4, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields/nosuch", nil)
	req4.Header.Set("X-Qoz-Request-Id", "err-trace-9")
	resp4, err := http.DefaultClient.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	body4, _ := io.ReadAll(resp4.Body)
	resp4.Body.Close()
	var errBody struct {
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(body4, &errBody); err != nil || errBody.RequestID != "err-trace-9" {
		t.Errorf("404 body %s: requestId %q, want err-trace-9", body4, errBody.RequestID)
	}
}

// TestClusterProbes checks /healthz and /readyz on both roles: always
// credential-free, healthz always 200, gateway readyz degrading to 503
// naming the unreachable shard.
func TestClusterProbes(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	// Shards behind auth: probes must not need the token.
	shards, _ := startShards(t, mounts, 2,
		serverOptions{CacheBytes: 32 << 20, Guard: guardOptions{AuthToken: "secret"}}, nil)
	_, gts := startGateway(t, gatewayOptions{
		Shards:     shardURLs(shards),
		ShardToken: "secret",
		Guard:      guardOptions{AuthToken: "secret"},
	})

	for _, url := range []string{shards[0].URL + "/healthz", shards[0].URL + "/readyz",
		gts.URL + "/healthz", gts.URL + "/readyz"} {
		resp, body := get(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %s: %s (probes must not need credentials)", url, resp.Status, body)
		}
	}

	shards[1].Close()
	resp, body := get(t, gts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead shard: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready 503 has no Retry-After; every retryable 503 should name a horizon")
	}
	var ready struct {
		Unreachable []string `json:"unreachableShards"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if len(ready.Unreachable) != 1 || ready.Unreachable[0] != shards[1].URL {
		t.Errorf("unreachableShards %v, want [%s]", ready.Unreachable, shards[1].URL)
	}
	// Liveness is unaffected.
	if resp, _ := get(t, gts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("healthz failed because a shard died; liveness must not depend on the fleet")
	}
}

// TestClusterStaleRetry advances a mutable store on the shards past the
// gateway's catalog: the per-sub-read generation gate must refuse the
// mixed state, and the gateway must refresh its catalog and serve the new
// generation — never stitch two generations into one body.
func TestClusterStaleRetry(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildMutableStoreFile(t, dir, 4, 16, 16)
	mounts := []mount{{name: "live", target: path}}
	shards, srvs := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})
	oldGen := (*gw.catalog.Load())["live"].Generation

	// Append a generation and let the shards adopt it; the gateway's
	// catalog still names the old one.
	m, err := store.OpenMutable(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := make([]float32, 16*16)
	for i := range plane {
		plane[i] = 99
	}
	if err := m.AppendSteps(context.Background(), plane); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for _, srv := range srvs {
		srv.refreshMounts(context.Background())
	}

	resp, body := get(t, gts.URL+"/v1/fields/live/region?lo=0,0,0&hi=4,16,16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read across a generation bump: %s: %s", resp.Status, body)
	}
	_, want := get(t, shards[0].URL+"/v1/fields/live/region?lo=0,0,0&hi=4,16,16")
	if !bytes.Equal(body, want) {
		t.Fatal("post-refresh gateway body differs from shard body")
	}
	newGen := (*gw.catalog.Load())["live"].Generation
	if newGen <= oldGen {
		t.Fatalf("gateway catalog generation %d after stale retry, want > %d", newGen, oldGen)
	}
	if !strings.Contains(resp.Header.Get("ETag"), fmt.Sprintf("-g%d-", newGen)) {
		t.Errorf("response ETag %s does not name the new generation %d", resp.Header.Get("ETag"), newGen)
	}
	// The new step is reachable through the gateway too.
	resp2, body2 := get(t, gts.URL+"/v1/fields/live/region?lo=4,0,0&hi=5,16,16")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("read of appended step: %s: %s", resp2.Status, body2)
	}
}

// TestTenantFlagParsing pins the -tenant name=token[:rps[:burst]] syntax.
func TestTenantFlagParsing(t *testing.T) {
	var tf tenantFlags
	for _, ok := range []string{"alice=tok", "bob=tok2:5", "carol=tok3:2.5:10", "dave=tok4:0"} {
		if err := tf.Set(ok); err != nil {
			t.Errorf("Set(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "noequals", "=tok", "x=", "x=t:abc", "x=t:1:0", "x=t:1:2:3"} {
		var f tenantFlags
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if tf[1].rate.RPS != 5 || tf[2].rate != (cluster.RateConfig{RPS: 2.5, Burst: 10}) {
		t.Errorf("parsed rates wrong: %+v", tf)
	}
	if tf[3].rate.RPS != -1 {
		t.Errorf("explicit rate 0 should mark the tenant exempt (RPS -1), got %v", tf[3].rate.RPS)
	}
	if tf[0].rate.RPS != 0 {
		t.Errorf("no rate suffix should leave the default (RPS 0), got %v", tf[0].rate.RPS)
	}
}

// TestShardSingleFlightMetrics drives concurrent identical requests at a
// single shard and checks the shard-side flight counters move — the
// request-layer mirror of the store's remote coalescing.
func TestShardSingleFlightMetrics(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	srv, err := newServer([]mount{{name: "nyx", target: p32}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/fields/nyx/region?lo=0,0,0&hi=32,32,32")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	st := srv.flight.Stats()
	if st.Leads+st.Coalesced != clients {
		t.Fatalf("flight accounted %d+%d requests, want %d", st.Leads, st.Coalesced, clients)
	}
	if st.Leads == 0 {
		t.Fatal("no flight leads recorded")
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "qozd_flight_leads_total") {
		t.Error("metrics missing qozd_flight_leads_total")
	}
}

// TestClusterGatewayLevelStitch pins the tentpole's cluster contract: a
// coarse (level>1) read through the gateway — stitched from per-shard
// coarse sub-reads — is byte-identical to the same coarse read against a
// single node holding the whole store, with the same level-aware ETag and
// headers. It also pins the strided-subset relation against the gateway's
// own full-resolution body, per-level cache validators, and the 400s for
// malformed levels and regions holding no coarse point.
func TestClusterGatewayLevelStitch(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	p64, _, _ := buildStoreFile64(t, dir)
	mounts := []mount{{name: "nyx", target: p32}, {name: "wave", target: p64}}
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	for _, tc := range []struct {
		field, region string
		level         int
	}{
		// 32^3 field of 8^3 bricks; [1,31)^3 crosses every brick boundary.
		{"nyx", "lo=1,2,3&hi=31,30,29", 2},
		{"nyx", "lo=1,2,3&hi=31,30,29", 3},
		// Stride 16: a single surviving coarse point (16,16,16) — most
		// sub-regions hold no coarse point and must be skipped, not 400ed.
		{"nyx", "lo=1,2,3&hi=31,30,29", 5},
		// 16^3 float64 field (with a NaN), stride 4.
		{"wave", "lo=0,1,2&hi=15,16,14", 3},
	} {
		for _, format := range []string{"", "&format=json"} {
			url := fmt.Sprintf("/v1/fields/%s/region?%s&level=%d%s", tc.field, tc.region, tc.level, format)
			wantResp, want := get(t, shards[0].URL+url)
			if wantResp.StatusCode != http.StatusOK {
				t.Fatalf("single-node %s: %s: %s", url, wantResp.Status, want)
			}
			gotResp, got := get(t, gts.URL+url)
			if gotResp.StatusCode != http.StatusOK {
				t.Fatalf("gateway %s: %s: %s", url, gotResp.Status, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: gateway body differs from single-node body (%d vs %d bytes)", url, len(got), len(want))
			}
			for _, h := range []string{"ETag", "X-Qoz-Dims", "X-Qoz-Dtype", "X-Qoz-Level"} {
				if gotResp.Header.Get(h) != wantResp.Header.Get(h) {
					t.Errorf("%s: header %s: gateway %q, single-node %q", url, h, gotResp.Header.Get(h), wantResp.Header.Get(h))
				}
			}
		}
	}

	// The coarse body really is the stride-2^(L-1) subset of the gateway's
	// own full-resolution read — stitching did not reorder or resample.
	const lo0, hi0 = 1, 31 // same box on every axis keeps the index math short
	const level = 2
	const stride = 1 << (level - 1)
	_, full := get(t, gts.URL+"/v1/fields/nyx/region?lo=1,1,1&hi=31,31,31")
	resp, coarse := get(t, gts.URL+fmt.Sprintf("/v1/fields/nyx/region?lo=1,1,1&hi=31,31,31&level=%d", level))
	if got := resp.Header.Get("X-Qoz-Level"); got != fmt.Sprint(level) {
		t.Errorf("X-Qoz-Level %q, want %d", got, level)
	}
	fullN := hi0 - lo0                 // full-resolution points per axis
	clo := (lo0 + stride - 1) / stride // first coarse coordinate
	cN := (hi0-1)/stride + 1 - clo     // coarse points per axis
	if wantLen := 4 * cN * cN * cN; len(coarse) != wantLen {
		t.Fatalf("coarse body %d bytes, want %d", len(coarse), wantLen)
	}
	for z := 0; z < cN; z++ {
		for y := 0; y < cN; y++ {
			for x := 0; x < cN; x++ {
				ci := ((z*cN+y)*cN + x) * 4
				gz, gy, gx := (clo+z)*stride-lo0, (clo+y)*stride-lo0, (clo+x)*stride-lo0
				fi := ((gz*fullN+gy)*fullN + gx) * 4
				if !bytes.Equal(coarse[ci:ci+4], full[fi:fi+4]) {
					t.Fatalf("coarse point (%d,%d,%d) differs from full-resolution sample", x, y, z)
				}
			}
		}
	}

	// Level is part of the validator: coarse and full reads carry distinct
	// ETags, and revalidating the coarse one answers 304.
	respFull, _ := get(t, gts.URL+"/v1/fields/nyx/region?lo=1,2,3&hi=31,30,29")
	respL, _ := get(t, gts.URL+"/v1/fields/nyx/region?lo=1,2,3&hi=31,30,29&level=2")
	if respFull.Header.Get("ETag") == respL.Header.Get("ETag") {
		t.Error("level-2 read shares the level-1 ETag; caches would serve the wrong resolution")
	}
	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields/nyx/region?lo=1,2,3&hi=31,30,29&level=2", nil)
	req.Header.Set("If-None-Match", respL.Header.Get("ETag"))
	resp304, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp304.Body)
	resp304.Body.Close()
	if resp304.StatusCode != http.StatusNotModified {
		t.Errorf("coarse revalidation answered %d, want 304", resp304.StatusCode)
	}

	// Malformed levels and coarse-empty regions are client errors on both
	// roles, stated identically.
	for _, bad := range []string{
		"lo=1,2,3&hi=31,30,29&level=0",
		"lo=1,2,3&hi=31,30,29&level=31",
		"lo=1,2,3&hi=31,30,29&level=x",
		"lo=1,1,1&hi=2,2,2&level=2", // [1,2): no coordinate is a multiple of 2
	} {
		for _, base := range []string{gts.URL, shards[0].URL} {
			resp, body := get(t, base+"/v1/fields/nyx/region?"+bad)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("GET ?%s against %s: %d, want 400 (body %s)", bad, base, resp.StatusCode, body)
			}
		}
	}

	// Fan-out still crossed shard boundaries at level 2 (the coarse grid
	// spans many bricks, so both owners served).
	gw.trafficMu.Lock()
	served := 0
	for _, tr := range gw.traffic {
		if tr.Reads > 0 {
			served++
		}
	}
	gw.trafficMu.Unlock()
	if served != 2 {
		t.Errorf("%d shards served coarse sub-reads, want 2", served)
	}
}
