// The query endpoint of both qozd roles: predicate pushdown served over
// HTTP. A shard answers GET /v1/fields/{name}/query straight from its
// store's statistics index (store.Query decodes only the bricks the index
// cannot resolve); a gateway answers the same endpoint by fanning
// sub-queries out along brick-ownership boundaries and merging the
// partial aggregates (qoz/cluster), so a client gets one answer identical
// to a single qozd holding the whole store. Both roles parse, validate,
// version (ETag), coalesce, and guard the endpoint identically.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"qoz/cluster"
	"qoz/store"
)

// parseQueryRequest reads and validates the query parameters of one
// /query request against the field's dims, answering the 400 itself on a
// bad value. Both roles parse identically, so shard and gateway reject
// the same requests with the same messages. The returned request always
// carries a concrete box: lo/hi default to the whole field.
func parseQueryRequest(w http.ResponseWriter, r *http.Request, dims []int,
	httpError func(http.ResponseWriter, *http.Request, int, string, ...any)) (store.QueryRequest, bool) {
	q := r.URL.Query()
	var req store.QueryRequest
	bad := func(format string, args ...any) (store.QueryRequest, bool) {
		httpError(w, r, http.StatusBadRequest, format, args...)
		return store.QueryRequest{}, false
	}

	req.Op = q.Get("op")
	switch req.Op {
	case store.QueryGT, store.QueryLT, store.QueryRange, store.QueryMin, store.QueryMax, store.QueryHist:
	case "":
		return bad("query needs op=gt|lt|range|min|max|hist")
	default:
		return bad("unknown query op %q (want gt, lt, range, min, max, or hist)", req.Op)
	}

	// The box is optional — a query, unlike a region read, defaults to the
	// whole field, because the server aggregates instead of shipping points.
	if (q.Get("lo") == "") != (q.Get("hi") == "") {
		return bad("query box needs both lo=a,b,... and hi=a,b,... (or neither, for the whole field)")
	}
	if q.Get("lo") != "" {
		var err error
		if req.Lo, err = parseCorner(q.Get("lo")); err != nil {
			return bad("lo: %v", err)
		}
		if req.Hi, err = parseCorner(q.Get("hi")); err != nil {
			return bad("hi: %v", err)
		}
	} else {
		req.Lo = make([]int, len(dims))
		req.Hi = dims
	}
	if len(req.Lo) != len(dims) || len(req.Hi) != len(dims) {
		return bad("query box rank %d/%d, field rank %d", len(req.Lo), len(req.Hi), len(dims))
	}
	for i := range dims {
		if req.Lo[i] < 0 || req.Hi[i] > dims[i] || req.Lo[i] >= req.Hi[i] {
			return bad("query box [%v,%v) outside field %v", req.Lo, req.Hi, dims)
		}
	}

	finite := func(name string) (float64, error) {
		s := q.Get(name)
		if s == "" {
			return 0, fmt.Errorf("op %q needs %s=", req.Op, name)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%s must be a finite number, got %q", name, s)
		}
		return v, nil
	}
	var err error
	switch req.Op {
	case store.QueryGT, store.QueryLT:
		if req.Value, err = finite("value"); err != nil {
			return bad("%v", err)
		}
	case store.QueryRange, store.QueryHist:
		if req.Low, err = finite("low"); err != nil {
			return bad("%v", err)
		}
		if req.High, err = finite("high"); err != nil {
			return bad("%v", err)
		}
		if req.Low >= req.High {
			return bad("query needs low < high, got [%g, %g)", req.Low, req.High)
		}
	}
	if req.Op == store.QueryHist {
		b := q.Get("bins")
		n, err := strconv.Atoi(b)
		if b == "" || err != nil || n < 1 || n > store.MaxQueryBins {
			return bad("hist needs bins in 1..%d, got %q", store.MaxQueryBins, b)
		}
		req.Bins = n
	}
	if ml := q.Get("maxloc"); ml != "" {
		n, err := strconv.Atoi(ml)
		if err != nil || n < 0 {
			return bad("maxloc must be a non-negative integer, got %q", ml)
		}
		req.MaxLocations = n
	}
	return req, true
}

// queryVariant names a query's representation for the ETag and the
// single-flight key: the operation and every parameter that changes the
// answer, in canonical shortest-round-trip formatting, plus the gzip
// content coding. The box is not part of it — regionETag already embeds
// the box alongside the variant.
func queryVariant(req store.QueryRequest, gz bool) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	v := "q" + req.Op
	switch req.Op {
	case store.QueryGT, store.QueryLT:
		v += ":" + g(req.Value)
	case store.QueryRange:
		v += ":" + g(req.Low) + ":" + g(req.High)
	case store.QueryHist:
		v += ":" + g(req.Low) + ":" + g(req.High) + ":" + strconv.Itoa(req.Bins)
	}
	if req.MaxLocations > 0 {
		v += ":k" + strconv.Itoa(req.MaxLocations)
	}
	if gz {
		v += "+gzip"
	}
	return v
}

// handleQuery answers a pushdown query over one mounted field. The flow
// mirrors handleRegion — validate, strong ETag over (store content, box,
// dtype, variant), If-None-Match, single-flight with -max-inflight
// admission inside — but the response is a small JSON aggregate
// (store.QueryResult) instead of a point slab, and the store prunes
// every brick its statistics index can resolve.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fields[r.PathValue("name")]
	if !ok {
		s.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
		return
	}
	req, ok := parseQueryRequest(w, r, f.store.Dims(), s.httpError)
	if !ok {
		return
	}
	// The served-points bound applies to what crosses the wire: a query
	// response is a fixed-size aggregate plus maxloc coordinates, so only
	// the location cap is limited — a whole-field count over a region too
	// large to download is exactly what pushdown is for.
	if s.opts.MaxPoints > 0 && req.MaxLocations > s.opts.MaxPoints {
		s.httpError(w, r, http.StatusRequestEntityTooLarge,
			"maxloc %d over the %d-point response limit", req.MaxLocations, s.opts.MaxPoints)
		return
	}

	// Same validator discipline as regions: the answer is a pure function
	// of (store content, box, dtype, query variant), and the gateway's
	// generation gate reads the same "crc-gN" prefix off this ETag.
	gz := acceptsGzip(r)
	crc, gen := f.store.ManifestVersion()
	etag := regionETag(crc, gen, f.store.DType(), req.Lo, req.Hi, queryVariant(req, gz))
	if inmMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	// Single-flight over the result object; the key carries (crc, gen) and
	// every answer-changing parameter, and omits gzip — both encodings
	// render from the same result.
	key := fmt.Sprintf("%s|%08x-%d|%v|%v|%s", f.name, crc, gen, req.Lo, req.Hi, queryVariant(req, false))
	v, _, err := s.flight.Do(r.Context(), key, func(ctx context.Context) (any, error) {
		// Queries decode bricks too (the unpruned ones), so they take the
		// same -max-inflight slot a region decode would.
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.rejected.Add(1)
				return nil, errShed
			}
		}
		return f.store.Query(ctx, req)
	})
	if err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nobody to answer
		}
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", "1")
			s.httpError(w, r, http.StatusServiceUnavailable, "server at -max-inflight capacity")
			return
		}
		s.httpError(w, r, http.StatusInternalServerError, "query: %v", err)
		return
	}

	w.Header().Set("ETag", etag)
	body, finish := jsonBody(w, r)
	json.NewEncoder(body).Encode(v.(*store.QueryResult))
	finish()
}

// handleQuery answers a pushdown query by fan-out: sub-queries along
// brick-ownership boundaries, answered by the owning shards (each pruning
// from its own statistics index), merged into one aggregate identical to
// a single qozd holding the whole store. Stale-retry, single-flight, and
// the ETag discipline mirror the gateway's region path.
func (g *gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	for attempt := 0; ; attempt++ {
		f, ok := g.fields()[r.PathValue("name")]
		if !ok {
			g.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
			return
		}
		req, ok := parseQueryRequest(w, r, f.Dims, g.httpError)
		if !ok {
			return
		}
		if g.opts.MaxPoints > 0 && req.MaxLocations > g.opts.MaxPoints {
			g.httpError(w, r, http.StatusRequestEntityTooLarge,
				"maxloc %d over the %d-point response limit", req.MaxLocations, g.opts.MaxPoints)
			return
		}

		// Same validator a single-node qozd would mint for this (crc, gen):
		// a client can revalidate against gateway or shard interchangeably.
		gz := acceptsGzip(r)
		etag := regionETag(f.ManifestCRC, f.Generation, f.DType, req.Lo, req.Hi, queryVariant(req, gz))
		if inmMatches(r.Header.Get("If-None-Match"), etag) {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}

		key := fmt.Sprintf("%s|%08x-%d|%v|%v|%s", f.Name, f.ManifestCRC, f.Generation,
			req.Lo, req.Hi, queryVariant(req, false))
		v, _, err := g.flight.Do(r.Context(), key, func(ctx context.Context) (any, error) {
			ctx = cluster.WithRequestID(ctx, r.Header.Get(requestIDHeader))
			res, stats, err := g.client.Query(ctx, f, req)
			g.account(stats)
			return res, err
		})
		if err != nil {
			if r.Context().Err() != nil {
				return // client is gone; nobody to answer
			}
			if errors.Is(err, cluster.ErrStale) && attempt == 0 {
				// The shards advanced past the gateway's catalog: one refresh
				// re-resolves the field and the fan-out retries against the
				// fleet's present, exactly like a stale region read.
				rctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
				rerr := g.refreshCatalog(rctx)
				cancel()
				if rerr == nil {
					continue
				}
			}
			w.Header().Set("Retry-After", "1")
			g.httpError(w, r, http.StatusBadGateway, "query fan-out failed: %v", err)
			return
		}

		w.Header().Set("ETag", etag)
		body, finish := jsonBody(w, r)
		json.NewEncoder(body).Encode(v.(*store.QueryResult))
		finish()
		return
	}
}
