package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qoz/store"
)

// queryGet fetches one /query URL and decodes the JSON aggregate.
func queryGet(t *testing.T, u string) (*http.Response, *store.QueryResult) {
	t.Helper()
	resp, body := get(t, u)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", u, resp.Status, body)
	}
	var res store.QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("GET %s: decode: %v (%s)", u, err, body)
	}
	return resp, &res
}

// TestServerQueryEndpoint is the shard-side differential test: every
// query answered over HTTP must match the same store.Query run directly
// against the archive, the selective ones must actually prune, and the
// endpoint must keep the region path's validator and error contracts.
func TestServerQueryEndpoint(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{
		CacheBytes: 32 << 20,
		MaxPoints:  1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	// A selective threshold straight from the statistics index: the
	// 4th-largest per-brick maximum, so only a few of the 64 bricks can
	// match and the rest must prune.
	maxes := make([]float64, 0, local.NumBricks())
	for i := 0; i < local.NumBricks(); i++ {
		st, ok := local.BrickStats(i)
		if !ok {
			t.Fatalf("brick %d: fresh store carries no statistics", i)
		}
		maxes = append(maxes, st.Max)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(maxes)))
	threshold := maxes[3]
	gv := url.QueryEscape(strconv.FormatFloat(threshold, 'g', -1, 64))

	for _, tc := range []struct {
		name  string
		query string
		req   store.QueryRequest
	}{
		{"gt whole field", "op=gt&value=" + gv,
			store.QueryRequest{Op: store.QueryGT, Value: threshold}},
		{"gt with locations", "op=gt&value=" + gv + "&maxloc=5",
			store.QueryRequest{Op: store.QueryGT, Value: threshold, MaxLocations: 5}},
		{"range in a box", "op=range&low=0.2&high=0.8&lo=4,4,4&hi=28,28,28",
			store.QueryRequest{Op: store.QueryRange, Low: 0.2, High: 0.8, Lo: []int{4, 4, 4}, Hi: []int{28, 28, 28}}},
		{"min", "op=min",
			store.QueryRequest{Op: store.QueryMin}},
		{"max in a box", "op=max&lo=8,0,8&hi=32,32,24",
			store.QueryRequest{Op: store.QueryMax, Lo: []int{8, 0, 8}, Hi: []int{32, 32, 24}}},
		{"hist", "op=hist&low=0&high=1&bins=16",
			store.QueryRequest{Op: store.QueryHist, Low: 0, High: 1, Bins: 16}},
	} {
		_, got := queryGet(t, ts.URL+"/v1/fields/nyx/query?"+tc.query)
		want, err := local.Query(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: direct query: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: served %+v, direct store.Query %+v", tc.name, got, want)
		}
	}

	// The selective threshold pruned on the serving store too.
	if pruned := srv.fields["nyx"].store.Stats().BricksPruned; pruned == 0 {
		t.Error("serving store pruned no bricks across the selective queries")
	}

	// Validator contract: strong ETag, stable, parameter-sensitive, and a
	// 304 revalidation decodes nothing.
	qurl := ts.URL + "/v1/fields/nyx/query?op=gt&value=" + gv
	resp, _ := queryGet(t, qurl)
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("query ETag %q is not a strong quoted validator", etag)
	}
	if resp2, _ := queryGet(t, qurl); resp2.Header.Get("ETag") != etag {
		t.Fatalf("ETag unstable across identical queries")
	}
	if respOther, _ := queryGet(t, qurl+"&maxloc=3"); respOther.Header.Get("ETag") == etag {
		t.Fatal("different query parameters share an ETag")
	}
	decodedBefore := srv.fields["nyx"].store.Stats().BricksDecoded
	req, _ := http.NewRequest(http.MethodGet, qurl, nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation answered %d, want 304", resp3.StatusCode)
	}
	if after := srv.fields["nyx"].store.Stats().BricksDecoded; after != decodedBefore {
		t.Fatalf("revalidation decoded %d bricks; 304 must not decode", after-decodedBefore)
	}

	// Error contract: the 400s of a malformed query, 404 for unknown
	// fields, and the maxloc response limit.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/fields/none/query?op=gt&value=1", http.StatusNotFound},
		{"/v1/fields/nyx/query", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=between", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt&value=NaN", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt&value=1&lo=0,0,0", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt&value=1&lo=0,0&hi=1,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt&value=1&lo=0,0,0&hi=64,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=range&low=2&high=1", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=hist&low=0&high=1", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=hist&low=0&high=1&bins=0", http.StatusBadRequest},
		{"/v1/fields/nyx/query?op=gt&value=1&maxloc=-1", http.StatusBadRequest},
	} {
		if resp, body := get(t, ts.URL+tc.url); resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, resp.StatusCode, tc.code, body)
		}
	}
	small, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	tsSmall := httptest.NewServer(small)
	defer tsSmall.Close()
	if resp, _ := get(t, tsSmall.URL+"/v1/fields/nyx/query?op=gt&value=0&maxloc=100"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized maxloc: status %d, want 413", resp.StatusCode)
	}

	// The pruning counter surfaces on /metrics.
	_, body := get(t, ts.URL+"/metrics")
	if want := `qozd_store_bricks_pruned_total{field="nyx"}`; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestClusterGatewayQuery is the cluster-side differential test: a query
// fanned out over shards and merged at the gateway must answer exactly
// what a single qozd holding the whole store answers — counts, bins,
// locations, extremum, and the pruning tallies — with the same ETag, and
// the fan-out must have used more than one shard.
func TestClusterGatewayQuery(t *testing.T) {
	dir := t.TempDir()
	p32, ds := buildStoreFile(t, dir)
	p64, _, _ := buildStoreFile64(t, dir)
	mounts := []mount{{name: "nyx", target: p32}, {name: "wave", target: p64}}
	shards, _ := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	// A threshold in the field's upper quartile: matches exist, most
	// bricks prune.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ds.Data {
		lo, hi = math.Min(lo, float64(v)), math.Max(hi, float64(v))
	}
	threshold := lo + 0.95*(hi-lo)
	gv := url.QueryEscape(strconv.FormatFloat(threshold, 'g', -1, 64))

	for _, tc := range []struct {
		field, query string
		extremum     bool
	}{
		{"nyx", "op=gt&value=" + gv, false},
		{"nyx", "op=gt&value=" + gv + "&maxloc=7", false},
		{"nyx", "op=range&low=0.2&high=0.8&lo=1,2,3&hi=31,30,29", false},
		{"nyx", "op=hist&low=0&high=1&bins=32", false},
		// wave holds a NaN in brick 0: the NaN tally must survive the merge.
		{"wave", "op=hist&low=-2&high=2&bins=8", false},
		{"nyx", "op=min", true},
		{"nyx", "op=max&lo=1,2,3&hi=31,30,29", true},
		{"wave", "op=max", true},
	} {
		u := "/v1/fields/" + tc.field + "/query?" + tc.query
		wantResp, want := queryGet(t, shards[0].URL+u)
		gotResp, got := queryGet(t, gts.URL+u)
		if tc.extremum {
			// The per-brick branch-and-bound sees different candidate orders
			// on gateway sub-boxes than on the whole field, so the brick
			// tallies legitimately differ; the answer must not.
			if got.Found != want.Found || got.Value != want.Value || !reflect.DeepEqual(got.Arg, want.Arg) {
				t.Errorf("%s: gateway extremum (%v, %v, %v), single-node (%v, %v, %v)",
					u, got.Found, got.Value, got.Arg, want.Found, want.Value, want.Arg)
			}
		} else if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: gateway merged %+v, single-node %+v", u, got, want)
		}
		if ge, se := gotResp.Header.Get("ETag"), wantResp.Header.Get("ETag"); ge != se {
			t.Errorf("%s: gateway ETag %s, single-node ETag %s", u, ge, se)
		}
	}

	// The queries fanned out: both shards answered sub-queries.
	gw.trafficMu.Lock()
	served := 0
	for _, tr := range gw.traffic {
		if tr.Reads > 0 {
			served++
		}
	}
	gw.trafficMu.Unlock()
	if served != 2 {
		t.Errorf("%d shards answered sub-queries, want 2", served)
	}

	// Conditional GET through the gateway.
	qurl := gts.URL + "/v1/fields/nyx/query?op=gt&value=" + gv
	resp, _ := queryGet(t, qurl)
	req, _ := http.NewRequest(http.MethodGet, qurl, nil)
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("gateway revalidation answered %d, want 304", resp2.StatusCode)
	}

	// Unknown fields and malformed parameters fail identically at either
	// role, before any shard is bothered.
	for _, u := range []string{
		"/v1/fields/none/query?op=gt&value=1",
		"/v1/fields/nyx/query?op=hist&low=0&high=1&bins=" + fmt.Sprint(store.MaxQueryBins+1),
	} {
		gr, _ := get(t, gts.URL+u)
		sr, _ := get(t, shards[0].URL+u)
		if gr.StatusCode != sr.StatusCode {
			t.Errorf("%s: gateway %d, shard %d", u, gr.StatusCode, sr.StatusCode)
		}
	}
}
