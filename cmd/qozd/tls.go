// TLS plumbing for both qozd roles. A shard serves HTTPS when given a
// certificate (-tls-cert/-tls-key) and, with -client-ca, requires every
// client to present a certificate chaining to that CA — which is how a
// fleet restricts region reads to gateways holding a fleet-issued
// credential (mTLS), rather than a bearer token alone. The gateway's
// side of the handshake is -shard-ca (what shard server certificates
// must chain to) and -shard-cert/-shard-key (the client certificate it
// presents). Bearer tokens still apply on top: TLS authenticates the
// hop, tokens authorize the tenant.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"time"
)

// serverTLSConfig builds a shard's serving TLS configuration: the server
// certificate, plus — when clientCAFile is set — mandatory verification
// of client certificates against that CA.
func serverTLSConfig(certFile, keyFile, clientCAFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("loading -tls-cert/-tls-key: %w", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	if clientCAFile != "" {
		pool, err := loadCertPool(clientCAFile)
		if err != nil {
			return nil, fmt.Errorf("loading -client-ca: %w", err)
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// shardTLSClient builds the gateway's shard-facing HTTP client for a TLS
// fleet: shard server certificates are verified against caFile, and
// certFile/keyFile — when set — is presented as the gateway's client
// certificate for shards enforcing mTLS.
func shardTLSClient(caFile, certFile, keyFile string) (*http.Client, error) {
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, fmt.Errorf("loading -shard-ca: %w", err)
		}
		cfg.RootCAs = pool
	}
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("loading -shard-cert/-shard-key: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return &http.Client{
		Timeout:   10 * time.Minute,
		Transport: &http.Transport{TLSClientConfig: cfg},
	}, nil
}

// loadCertPool reads a PEM CA bundle into a pool.
func loadCertPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("%s holds no PEM certificate", path)
	}
	return pool, nil
}

// serve starts hs over HTTP, or HTTPS when a server certificate is
// configured (with mandatory client verification when clientCA is set).
func serve(hs *http.Server, tlsCert, tlsKey, clientCA string) error {
	if tlsCert == "" && tlsKey == "" {
		if clientCA != "" {
			return fmt.Errorf("-client-ca needs -tls-cert and -tls-key")
		}
		return hs.ListenAndServe()
	}
	cfg, err := serverTLSConfig(tlsCert, tlsKey, clientCA)
	if err != nil {
		return err
	}
	hs.TLSConfig = cfg
	return hs.ListenAndServeTLS("", "")
}
