package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qoz"
	"qoz/datagen"
	"qoz/store"
)

// buildStoreFile writes a small brick store to dir and returns its path
// and the original field.
func buildStoreFile(t *testing.T, dir string) (string, datagen.Dataset) {
	t.Helper()
	ds := datagen.NYX(32, 32, 32)
	path := filepath.Join(dir, "nyx.qozb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(context.Background(), f, ds.Data, ds.Dims, store.WriteOptions{
		Opts:  qoz.Options{RelBound: 1e-3},
		Brick: []int{8, 8, 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, body
}

func TestServerEndpoints(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{
		CacheBytes: 32 << 20,
		MaxPoints:  1 << 20,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Field listing and manifest.
	resp, body := get(t, ts.URL+"/v1/fields")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/fields: %s: %s", resp.Status, body)
	}
	var list struct {
		Fields []fieldInfo `json:"fields"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("/v1/fields: %v", err)
	}
	if len(list.Fields) != 1 || list.Fields[0].Name != "nyx" || list.Fields[0].Bricks != 64 {
		t.Fatalf("/v1/fields listed %+v", list.Fields)
	}
	resp, body = get(t, ts.URL+"/v1/fields/nyx")
	var info fieldInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("/v1/fields/nyx: %v (%s)", err, body)
	}
	if info.Codec == "" || len(info.Dims) != 3 || info.ErrorBound <= 0 {
		t.Fatalf("manifest incomplete: %+v", info)
	}

	// Raw region bytes must equal a local ReadRegion bit for bit.
	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lo, hi := []int{4, 4, 4}, []int{12, 20, 12}
	want, err := local.ReadRegion(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/v1/fields/nyx/region?lo=4,4,4&hi=12,20,12")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("region Content-Type %q", ct)
	}
	if d := resp.Header.Get("X-Qoz-Dims"); d != "8,16,8" {
		t.Fatalf("X-Qoz-Dims %q", d)
	}
	if len(body) != 4*len(want) {
		t.Fatalf("region body %d bytes, want %d", len(body), 4*len(want))
	}
	for i := range want {
		if got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])); got != want[i] {
			t.Fatalf("region byte payload differs at point %d: %v != %v", i, got, want[i])
		}
	}

	// JSON format carries the same values.
	resp, body = get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=2,2,2&format=json")
	var jr struct {
		Dims []int     `json:"dims"`
		Data []float32 `json:"data"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("json region: %v (%s)", err, body)
	}
	wantJSON, _ := local.ReadRegion(context.Background(), []int{0, 0, 0}, []int{2, 2, 2})
	if len(jr.Data) != len(wantJSON) || len(jr.Dims) != 3 {
		t.Fatalf("json region shape: %+v", jr.Dims)
	}
	for i := range wantJSON {
		if math.Abs(float64(jr.Data[i]-wantJSON[i])) > 1e-6*math.Abs(float64(wantJSON[i])) {
			t.Fatalf("json region differs at %d: %v != %v", i, jr.Data[i], wantJSON[i])
		}
	}

	// Error contract: 404, 400s, and the region size limit.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/fields/none", http.StatusNotFound},
		{"/v1/fields/none/region?lo=0,0,0&hi=1,1,1", http.StatusNotFound},
		{"/v1/fields/nyx/region", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0&hi=1,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0,0&hi=64,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=x,0,0&hi=1,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1&format=xml", http.StatusBadRequest},
	} {
		if resp, _ := get(t, ts.URL+tc.url); resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
	big, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	tsBig := httptest.NewServer(big)
	defer tsBig.Close()
	if resp, _ := get(t, tsBig.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=8,8,8"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized region: status %d, want 413", resp.StatusCode)
	}

	// Metrics reflect the traffic above.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"qozd_requests_total",
		`qozd_store_bricks_decoded_total{field="nyx"}`,
		"qozd_cache_bytes",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(string(body), "qozd_region_points_total 1032\n") { // 8*16*8 + 2*2*2
		t.Errorf("/metrics points counter wrong:\n%s", body)
	}
}

// TestServerInflightLimit verifies admission control sheds load with 503
// once -max-inflight region decodes are running.
func TestServerInflightLimit(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.inflight <- struct{}{} // occupy the only slot
	resp, _ := get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	<-srv.inflight
	if resp, _ := get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("freed server answered %d, want 200", resp.StatusCode)
	}
}

// TestServerRemoteMount is the end-to-end acceptance path: qozd mounts a
// store URL (range reads against an object server) and its region
// endpoint must return the same bytes as a local read — the full
// bucket → range reads → shared cache → HTTP response chain.
func TestServerRemoteMount(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("ETag", `"v1"`)
		http.ServeContent(w, req, "nyx.qozb", time.Unix(1700000000, 0), bytes.NewReader(content))
	}))
	defer origin.Close()

	srv, err := newServer([]mount{{name: "nyx", target: origin.URL}}, serverOptions{
		CacheBytes: 32 << 20,
		ReadAhead:  -1, // exact ranges, so the transfer assertion below is tight
	})
	if err != nil {
		t.Fatalf("newServer over URL mount: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.ReadRegion(context.Background(), []int{4, 4, 4}, []int{12, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/v1/fields/nyx/region?lo=4,4,4&hi=12,12,12")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote-mounted region: %s: %s", resp.Status, body)
	}
	if len(body) != 4*len(want) {
		t.Fatalf("remote-mounted region body %d bytes, want %d", len(body), 4*len(want))
	}
	for i := range want {
		if got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])); got != want[i] {
			t.Fatalf("remote-mounted region differs at %d: %v != %v", i, got, want[i])
		}
	}

	// The store behind the mount fetched only ranges, and metrics show it.
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `qozd_store_remote_ranges_total{field="nyx"}`) {
		t.Errorf("/metrics missing remote range counter:\n%s", metrics)
	}
	st := srv.fields["nyx"].store.Stats()
	if st.RemoteRanges == 0 || st.RemoteBytes >= int64(len(content)) {
		t.Fatalf("URL mount transferred %d bytes of a %d-byte store in %d ranges — not range reads",
			st.RemoteBytes, len(content), st.RemoteRanges)
	}
}
