package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qoz"
	"qoz/datagen"
	"qoz/store"
)

// buildStoreFile writes a small brick store to dir and returns its path
// and the original field.
func buildStoreFile(t *testing.T, dir string) (string, datagen.Dataset) {
	t.Helper()
	ds := datagen.NYX(32, 32, 32)
	path := filepath.Join(dir, "nyx.qozb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(context.Background(), f, ds.Data, ds.Dims, store.WriteOptions{
		Opts:  qoz.Options{RelBound: 1e-3},
		Brick: []int{8, 8, 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, body
}

func TestServerEndpoints(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{
		CacheBytes: 32 << 20,
		MaxPoints:  1 << 20,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Field listing and manifest.
	resp, body := get(t, ts.URL+"/v1/fields")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/fields: %s: %s", resp.Status, body)
	}
	var list struct {
		Fields []fieldInfo `json:"fields"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("/v1/fields: %v", err)
	}
	if len(list.Fields) != 1 || list.Fields[0].Name != "nyx" || list.Fields[0].Bricks != 64 {
		t.Fatalf("/v1/fields listed %+v", list.Fields)
	}
	resp, body = get(t, ts.URL+"/v1/fields/nyx")
	var info fieldInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("/v1/fields/nyx: %v (%s)", err, body)
	}
	if info.Codec == "" || len(info.Dims) != 3 || info.ErrorBound <= 0 {
		t.Fatalf("manifest incomplete: %+v", info)
	}

	// Raw region bytes must equal a local ReadRegion bit for bit.
	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lo, hi := []int{4, 4, 4}, []int{12, 20, 12}
	want, err := local.ReadRegion(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/v1/fields/nyx/region?lo=4,4,4&hi=12,20,12")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("region Content-Type %q", ct)
	}
	if d := resp.Header.Get("X-Qoz-Dims"); d != "8,16,8" {
		t.Fatalf("X-Qoz-Dims %q", d)
	}
	if len(body) != 4*len(want) {
		t.Fatalf("region body %d bytes, want %d", len(body), 4*len(want))
	}
	for i := range want {
		if got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])); got != want[i] {
			t.Fatalf("region byte payload differs at point %d: %v != %v", i, got, want[i])
		}
	}

	// JSON format carries the same values.
	resp, body = get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=2,2,2&format=json")
	var jr struct {
		Dims []int     `json:"dims"`
		Data []float32 `json:"data"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("json region: %v (%s)", err, body)
	}
	wantJSON, _ := local.ReadRegion(context.Background(), []int{0, 0, 0}, []int{2, 2, 2})
	if len(jr.Data) != len(wantJSON) || len(jr.Dims) != 3 {
		t.Fatalf("json region shape: %+v", jr.Dims)
	}
	for i := range wantJSON {
		if math.Abs(float64(jr.Data[i]-wantJSON[i])) > 1e-6*math.Abs(float64(wantJSON[i])) {
			t.Fatalf("json region differs at %d: %v != %v", i, jr.Data[i], wantJSON[i])
		}
	}

	// Error contract: 404, 400s, and the region size limit.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/fields/none", http.StatusNotFound},
		{"/v1/fields/none/region?lo=0,0,0&hi=1,1,1", http.StatusNotFound},
		{"/v1/fields/nyx/region", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0&hi=1,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0,0&hi=64,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=x,0,0&hi=1,1,1", http.StatusBadRequest},
		{"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1&format=xml", http.StatusBadRequest},
	} {
		if resp, _ := get(t, ts.URL+tc.url); resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
	big, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	tsBig := httptest.NewServer(big)
	defer tsBig.Close()
	if resp, _ := get(t, tsBig.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=8,8,8"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized region: status %d, want 413", resp.StatusCode)
	}

	// Metrics reflect the traffic above.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"qozd_requests_total",
		`qozd_store_bricks_decoded_total{field="nyx"}`,
		"qozd_cache_bytes",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(string(body), "qozd_region_points_total 1032\n") { // 8*16*8 + 2*2*2
		t.Errorf("/metrics points counter wrong:\n%s", body)
	}
}

// TestServerInflightLimit verifies admission control sheds load with 503
// once -max-inflight region decodes are running.
func TestServerInflightLimit(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.inflight <- struct{}{} // occupy the only slot
	resp, _ := get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if resp.Header.Get("ETag") != "" {
		t.Error("503 carries an ETag; validators belong only to the selected representation")
	}
	<-srv.inflight
	if resp, _ := get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("freed server answered %d, want 200", resp.StatusCode)
	}
}

// TestServerRemoteMount is the end-to-end acceptance path: qozd mounts a
// store URL (range reads against an object server) and its region
// endpoint must return the same bytes as a local read — the full
// bucket → range reads → shared cache → HTTP response chain.
func TestServerRemoteMount(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("ETag", `"v1"`)
		http.ServeContent(w, req, "nyx.qozb", time.Unix(1700000000, 0), bytes.NewReader(content))
	}))
	defer origin.Close()

	srv, err := newServer([]mount{{name: "nyx", target: origin.URL}}, serverOptions{
		CacheBytes: 32 << 20,
		ReadAhead:  -1, // exact ranges, so the transfer assertion below is tight
	})
	if err != nil {
		t.Fatalf("newServer over URL mount: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.ReadRegion(context.Background(), []int{4, 4, 4}, []int{12, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/v1/fields/nyx/region?lo=4,4,4&hi=12,12,12")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote-mounted region: %s: %s", resp.Status, body)
	}
	if len(body) != 4*len(want) {
		t.Fatalf("remote-mounted region body %d bytes, want %d", len(body), 4*len(want))
	}
	for i := range want {
		if got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])); got != want[i] {
			t.Fatalf("remote-mounted region differs at %d: %v != %v", i, got, want[i])
		}
	}

	// The store behind the mount fetched only ranges, and metrics show it.
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `qozd_store_remote_ranges_total{field="nyx"}`) {
		t.Errorf("/metrics missing remote range counter:\n%s", metrics)
	}
	st := srv.fields["nyx"].store.Stats()
	if st.RemoteRanges == 0 || st.RemoteBytes >= int64(len(content)) {
		t.Fatalf("URL mount transferred %d bytes of a %d-byte store in %d ranges — not range reads",
			st.RemoteBytes, len(content), st.RemoteRanges)
	}
}

// buildStoreFile64 writes a small float64 brick store (with a NaN the
// JSON path must turn into null) and returns its path and original field.
func buildStoreFile64(t *testing.T, dir string) (string, []float64, []int) {
	t.Helper()
	dims := []int{16, 16, 16}
	n := 16 * 16 * 16
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/40) + 1e-9*math.Cos(float64(i)/3)
	}
	data[5] = math.NaN()
	path := filepath.Join(dir, "wave64.qozb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteT(context.Background(), f, data, dims, store.WriteOptions{
		Opts:  qoz.Options{ErrorBound: 1e-7},
		Brick: []int{8, 8, 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, data, dims
}

// TestServerFloat64Field serves a float64 store: the manifest must name
// the dtype, the raw region endpoint must return 8-byte little-endian
// samples bit-identical to a local read, and the JSON format must carry
// full-precision values with NaN as null.
func TestServerFloat64Field(t *testing.T) {
	path, _, _ := buildStoreFile64(t, t.TempDir())
	srv, err := newServer([]mount{{name: "wave", target: path}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, body := get(t, ts.URL+"/v1/fields/wave")
	var info fieldInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("manifest: %v (%s)", err, body)
	}
	if info.DType != "float64" {
		t.Fatalf("manifest dtype = %q, want float64", info.DType)
	}

	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lo, hi := []int{0, 0, 0}, []int{8, 12, 8}
	want, err := local.ReadRegionFloat64(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/v1/fields/wave/region?lo=0,0,0&hi=8,12,8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region: %s: %s", resp.Status, body)
	}
	if dt := resp.Header.Get("X-Qoz-Dtype"); dt != "float64" {
		t.Fatalf("X-Qoz-Dtype %q", dt)
	}
	if len(body) != 8*len(want) {
		t.Fatalf("region body %d bytes, want %d (8 per point)", len(body), 8*len(want))
	}
	for i := range want {
		got := math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		same := got == want[i] || (math.IsNaN(got) && math.IsNaN(want[i]))
		if !same {
			t.Fatalf("raw f64 region differs at %d: %v != %v", i, got, want[i])
		}
	}

	// JSON: full float64 precision, NaN as null. Point 5 of the field is
	// the NaN; it lies inside [0,0,0)-[2,2,8).
	resp, body = get(t, ts.URL+"/v1/fields/wave/region?lo=0,0,0&hi=2,2,8&format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json region: %s: %s", resp.Status, body)
	}
	var jr struct {
		Dims  []int      `json:"dims"`
		DType string     `json:"dtype"`
		Data  []*float64 `json:"data"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("json region: %v (%s)", err, body)
	}
	if jr.DType != "float64" {
		t.Fatalf("json region dtype %q", jr.DType)
	}
	wantJSON, _ := local.ReadRegionFloat64(context.Background(), []int{0, 0, 0}, []int{2, 2, 8})
	if len(jr.Data) != len(wantJSON) {
		t.Fatalf("json region %d points, want %d", len(jr.Data), len(wantJSON))
	}
	for i, p := range jr.Data {
		if math.IsNaN(wantJSON[i]) {
			if p != nil {
				t.Fatalf("json point %d: NaN served as %v, want null", i, *p)
			}
			continue
		}
		if p == nil || *p != wantJSON[i] {
			t.Fatalf("json point %d: %v != %v (float64 precision must survive)", i, p, wantJSON[i])
		}
	}
}

// TestServerConditionalGet exercises the ETag contract: region responses
// carry a strong validator, If-None-Match revalidation answers 304 with no
// body and no decode, and the validator moves with region, format, and
// store content.
func TestServerConditionalGet(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/v1/fields/nyx/region?lo=0,0,0&hi=4,4,4"
	resp, _ := get(t, url)
	etag := resp.Header.Get("ETag")
	if etag == "" || strings.HasPrefix(etag, "W/") || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("region ETag %q is not a strong quoted validator", etag)
	}
	resp2, _ := get(t, url)
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("ETag unstable across identical requests: %q then %q", etag, resp2.Header.Get("ETag"))
	}
	respJSON, _ := get(t, url+"&format=json")
	if respJSON.Header.Get("ETag") == etag {
		t.Fatal("json and raw encodings share an ETag; a cache would serve the wrong body")
	}
	respOther, _ := get(t, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=4,4,5")
	if respOther.Header.Get("ETag") == etag {
		t.Fatal("different regions share an ETag")
	}

	decodedBefore := srv.fields["nyx"].store.Stats().BricksDecoded
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation answered %d, want 304", resp3.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if resp3.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag %q, want %q", resp3.Header.Get("ETag"), etag)
	}
	if after := srv.fields["nyx"].store.Stats().BricksDecoded; after != decodedBefore {
		t.Fatalf("revalidation decoded %d bricks; 304 must not decode", after-decodedBefore)
	}

	// A stale validator (or a list not containing ours) re-sends the body.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", `"stale", "also-stale"`)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match answered %d, want 200", resp4.StatusCode)
	}
	// If-None-Match: * matches any representation.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", "*")
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: * answered %d, want 304", resp5.StatusCode)
	}
	// If-None-Match uses the weak comparison: a W/-prefixed copy of our
	// validator (a transforming intermediary's doing) still revalidates.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", "W/"+etag)
	resp6, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp6.Body.Close()
	if resp6.StatusCode != http.StatusNotModified {
		t.Fatalf("weakened If-None-Match answered %d, want 304 (weak comparison)", resp6.StatusCode)
	}
}

// TestServerAuth locks the API behind a bearer token: /v1/* must refuse
// missing and wrong tokens with 401, accept the right one, and /metrics
// opens up only behind MetricsPublic.
func TestServerAuth(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	const token = "s3cr3t-token"

	for _, tc := range []struct {
		name          string
		metricsPublic bool
		metricsWant   int
	}{
		{"metrics guarded", false, http.StatusUnauthorized},
		{"metrics public", true, http.StatusOK},
	} {
		srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{
			Guard: guardOptions{AuthToken: token, MetricsPublic: tc.metricsPublic},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)

		do := func(path, auth string) int {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
			if auth != "" {
				req.Header.Set("Authorization", auth)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s: 401 without WWW-Authenticate", path)
			}
			return resp.StatusCode
		}
		if got := do("/v1/fields", ""); got != http.StatusUnauthorized {
			t.Errorf("%s: unauthenticated /v1/fields: %d, want 401", tc.name, got)
		}
		if got := do("/v1/fields", "Bearer wrong-token"); got != http.StatusUnauthorized {
			t.Errorf("%s: wrong token: %d, want 401", tc.name, got)
		}
		if got := do("/v1/fields/nyx/region?lo=0,0,0&hi=1,1,1", ""); got != http.StatusUnauthorized {
			t.Errorf("%s: unauthenticated region: %d, want 401", tc.name, got)
		}
		if got := do("/v1/fields", "Bearer "+token); got != http.StatusOK {
			t.Errorf("%s: correct token: %d, want 200", tc.name, got)
		}
		if got := do("/metrics", ""); got != tc.metricsWant {
			t.Errorf("%s: unauthenticated /metrics: %d, want %d", tc.name, got, tc.metricsWant)
		}
		ts.Close()
		srv.Close()
	}
}

// buildMutableStoreFile writes a mutable v3 store with `steps` committed
// time steps of shape ny×nx and returns its path.
func buildMutableStoreFile(t *testing.T, dir string, steps, ny, nx int) (string, []float32) {
	t.Helper()
	path := filepath.Join(dir, "live.qozb")
	m, err := store.CreateMutable(path, []int{0, ny, nx}, store.WriteOptions{
		Opts:  qoz.Options{ErrorBound: 1e-3},
		Brick: []int{2, 8, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var field []float32
	for s := 0; s < steps; s++ {
		plane := make([]float32, ny*nx)
		for i := range plane {
			plane[i] = float32(s)*5 + float32(i%7)
		}
		field = append(field, plane...)
		if err := m.AppendSteps(context.Background(), plane); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return path, field
}

// TestServerGzip: JSON responses negotiate gzip via Accept-Encoding; raw
// little-endian region bytes never do; the gzip variant carries its own
// ETag.
func TestServerGzip(t *testing.T) {
	path, _ := buildStoreFile(t, t.TempDir())
	srv, err := newServer([]mount{{name: "nyx", target: path}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	getEnc := func(url, enc string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if enc != "" {
			req.Header.Set("Accept-Encoding", enc)
		}
		// A plain transport without DisableCompression would transparently
		// gunzip and hide the Content-Encoding header.
		tr := &http.Transport{DisableCompression: true}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	regionURL := ts.URL + "/v1/fields/nyx/region?lo=0,0,0&hi=2,2,2&format=json"
	plain, plainBody := getEnc(regionURL, "")
	if plain.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity request answered with Content-Encoding %q", plain.Header.Get("Content-Encoding"))
	}
	gz, gzBody := getEnc(regionURL, "gzip")
	if gz.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip request answered with Content-Encoding %q", gz.Header.Get("Content-Encoding"))
	}
	if !strings.Contains(gz.Header.Get("Vary"), "Accept-Encoding") {
		t.Fatalf("gzip response missing Vary: Accept-Encoding (got %q)", gz.Header.Get("Vary"))
	}
	if gz.Header.Get("ETag") == plain.Header.Get("ETag") {
		t.Fatal("gzip and identity JSON variants share an ETag")
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzBody))
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plainBody) {
		t.Fatal("gzip body does not decompress to the identity body")
	}
	// q=0 explicitly refuses gzip.
	refuse, _ := getEnc(regionURL, "gzip;q=0")
	if refuse.Header.Get("Content-Encoding") != "" {
		t.Fatal("Accept-Encoding: gzip;q=0 was answered with gzip")
	}

	// Raw LE samples are never content-coded.
	rawURL := ts.URL + "/v1/fields/nyx/region?lo=0,0,0&hi=2,2,2"
	raw, rawBody := getEnc(rawURL, "gzip")
	if raw.Header.Get("Content-Encoding") != "" {
		t.Fatalf("raw region answered with Content-Encoding %q", raw.Header.Get("Content-Encoding"))
	}
	if len(rawBody) != 2*2*2*4 {
		t.Fatalf("raw region body %d bytes, want 32", len(rawBody))
	}

	// The fields listing negotiates too.
	fl, flBody := getEnc(ts.URL+"/v1/fields", "gzip")
	if fl.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("/v1/fields did not negotiate gzip")
	}
	zr2, err := gzip.NewReader(bytes.NewReader(flBody))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := io.ReadAll(zr2)
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Fields []fieldInfo `json:"fields"`
	}
	if err := json.Unmarshal(dec, &list); err != nil {
		t.Fatalf("gunzipped /v1/fields is not JSON: %v", err)
	}
}

// TestServerGenerationPickup: qozd serves a mutable store, the simulation
// appends a step, and a poll pass picks the new generation up — new dims,
// new data, moved ETag (a stale If-None-Match gets the full response, not
// a 304).
func TestServerGenerationPickup(t *testing.T) {
	dir := t.TempDir()
	const ny, nx = 16, 16
	path, _ := buildMutableStoreFile(t, dir, 2, ny, nx)
	srv, err := newServer([]mount{{name: "live", target: path}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/v1/fields/live")
	var info fieldInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Mutable || info.Generation != 3 || info.Dims[0] != 2 {
		t.Fatalf("mounted mutable manifest: %+v", info)
	}

	regionURL := ts.URL + "/v1/fields/live/region?lo=0,0,0&hi=2,4,4"
	resp, _ = get(t, regionURL)
	oldTag := resp.Header.Get("ETag")
	if oldTag == "" {
		t.Fatal("region response missing ETag")
	}

	// The simulation commits another step out of process.
	m, err := store.OpenMutable(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := make([]float32, ny*nx)
	for i := range plane {
		plane[i] = 777
	}
	if err := m.AppendSteps(context.Background(), plane); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Until a poll pass runs, qozd serves the old generation.
	resp, _ = get(t, regionURL)
	if got := resp.Header.Get("ETag"); got != oldTag {
		t.Fatalf("ETag moved before refresh: %q -> %q", oldTag, got)
	}
	srv.refreshMounts(context.Background())

	resp, body = get(t, ts.URL+"/v1/fields/live")
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 4 || info.Dims[0] != 3 {
		t.Fatalf("after refresh: %+v", info)
	}

	// A client revalidating with the stale ETag must get 200 + data.
	req, _ := http.NewRequest(http.MethodGet, regionURL, nil)
	req.Header.Set("If-None-Match", oldTag)
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	condBody, _ := io.ReadAll(cond.Body)
	cond.Body.Close()
	if cond.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match answered %s, want 200 with fresh data", cond.Status)
	}
	if len(condBody) != 2*4*4*4 {
		t.Fatalf("stale revalidation body %d bytes, want %d", len(condBody), 2*4*4*4)
	}
	newTag := cond.Header.Get("ETag")
	if newTag == "" || newTag == oldTag {
		t.Fatalf("refreshed region ETag %q did not move from %q", newTag, oldTag)
	}
	// And the fresh validator revalidates to 304.
	req2, _ := http.NewRequest(http.MethodGet, regionURL, nil)
	req2.Header.Set("If-None-Match", newTag)
	cond2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cond2.Body)
	cond2.Body.Close()
	if cond2.StatusCode != http.StatusNotModified {
		t.Fatalf("fresh If-None-Match answered %s, want 304", cond2.Status)
	}

	// The appended step's data is served.
	resp, body = get(t, ts.URL+"/v1/fields/live/region?lo=2,0,0&hi=3,1,4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("appended-step region: %s", resp.Status)
	}
	for i := 0; i < 4; i++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		if math.Abs(float64(v)-777) > 1e-3+1e-6 {
			t.Fatalf("appended step point %d = %v, want ~777", i, v)
		}
	}
}
