// The gateway role of qozd: the same public API as a mounted server, but
// answered by fanning region reads out over a fleet of ordinary qozd
// shards and stitching the sub-region slabs back together (qoz/cluster
// does the planning, routing, and stitching). The gateway holds no store —
// its only state is the catalog it learns from the shards' own manifest
// endpoints — so gateways are stateless, horizontally scalable, and
// restartable at will.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qoz/cluster"
	"qoz/store"
)

// gatewayOptions configures a gateway.
type gatewayOptions struct {
	Shards     []string // shard base URLs; also the placement domain
	ShardToken string   // bearer token presented to shards
	Attempts   int      // distinct shards tried per sub-region (1 = no failover)
	Workers    int      // concurrent sub-reads per region request (<=0 = all)
	MaxPoints  int      // largest region served, in points (<=0 = unlimited)
	Guard      guardOptions
	Ins        *instrument // traces, histograms, request logs; nil builds a silent one
	Pprof      bool        // expose /debug/pprof/* on the gateway mux
	// HTTP overrides the shard-facing client (tests inject a
	// httptest-backed transport); nil selects a timeoutful default.
	HTTP *http.Client
}

// gateway is the fan-out HTTP handler. The catalog pointer swaps
// atomically on refresh, so requests racing a refresh see either the old
// or the new catalog wholly — and the per-sub-read generation gate in
// qoz/cluster guarantees the stitched bytes match whichever one they saw.
type gateway struct {
	mux     *http.ServeMux
	opts    gatewayOptions
	client  *cluster.Client
	guard   *guard
	ins     *instrument
	flight  cluster.Flight // coalesces identical concurrent fan-outs
	catalog atomic.Pointer[map[string]*cluster.Field]

	requests    atomic.Int64
	errors      atomic.Int64
	regionPts   atomic.Int64
	refreshErrs atomic.Int64
	subReads    atomic.Int64
	retries     atomic.Int64

	trafficMu sync.Mutex
	traffic   map[string]*cluster.ShardTraffic // lifetime per-shard totals
}

// newGateway builds the fan-out engine and learns the initial catalog
// from the shards; with no shard reachable at startup there is nothing to
// serve and construction fails.
func newGateway(opts gatewayOptions) (*gateway, error) {
	g := &gateway{opts: opts, traffic: make(map[string]*cluster.ShardTraffic)}
	var err error
	if g.guard, err = newGuard(opts.Guard); err != nil {
		return nil, err
	}
	if g.ins = opts.Ins; g.ins == nil {
		g.ins = newInstrument(instrumentOptions{})
	}
	hc := opts.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Minute}
	}
	g.client = &cluster.Client{
		HTTP:     hc,
		Token:    opts.ShardToken,
		Attempts: opts.Attempts,
		Workers:  opts.Workers,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.refreshCatalog(ctx); err != nil {
		return nil, fmt.Errorf("gateway: initial catalog: %w", err)
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /v1/fields", g.handleFields)
	g.mux.HandleFunc("GET /v1/fields/{name}", g.handleField)
	g.mux.HandleFunc("GET /v1/fields/{name}/region", g.handleRegion)
	g.mux.HandleFunc("GET /v1/fields/{name}/query", g.handleQuery)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /debug/traces", g.ins.handleTraces)
	if opts.Pprof {
		registerPprof(g.mux)
	}
	return g, nil
}

func (g *gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	id := ensureRequestID(w, r)
	// The gateway's root span parents the fan-out spans qoz/cluster opens
	// (one "subread" per sub-region, one "shard.get" per attempt); no
	// store is mounted here, so the stage observer stays off.
	g.ins.serve(w, r, id, false, func(w http.ResponseWriter, r *http.Request) string {
		// Probes bypass auth and rate limits: see handleHealthz.
		if r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			tenant, ok := g.guard.admit(w, r)
			if !ok {
				return tenant
			}
			g.mux.ServeHTTP(w, r)
			return tenant
		}
		g.mux.ServeHTTP(w, r)
		return ""
	})
}

// httpError mirrors server.httpError for the gateway's counters.
func (g *gateway) httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	if code != http.StatusNotFound {
		g.errors.Add(1)
	}
	jsonError(w, r, code, format, args...)
}

// fields returns the current catalog (never nil after construction).
func (g *gateway) fields() map[string]*cluster.Field { return *g.catalog.Load() }

func (g *gateway) fieldNames() []string {
	cat := g.fields()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// refreshCatalog re-learns the fleet's fields. A failed refresh keeps the
// previous catalog serving — a gateway would rather serve a slightly old
// generation (failing over stale shards per sub-read) than nothing.
func (g *gateway) refreshCatalog(ctx context.Context) error {
	cat, err := g.client.Catalog(ctx, g.opts.Shards)
	if err != nil {
		g.refreshErrs.Add(1)
		return err
	}
	g.catalog.Store(&cat)
	return nil
}

// refreshLoop polls the shard catalog, the gateway-side analogue of the
// server's mount refresh: mutable stores advancing on their shards become
// visible here, moving the gateway's ETags with them.
func (g *gateway) refreshLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		if err := g.refreshCatalog(ctx); err != nil {
			log.Printf("gateway: catalog refresh: %v", err)
		}
		cancel()
	}
}

// gatewayFieldInfo is the gateway's field manifest JSON: the same core
// fields a shard reports, plus where the bricks live.
type gatewayFieldInfo struct {
	Name        string   `json:"name"`
	Dims        []int    `json:"dims"`
	Brick       []int    `json:"brick"`
	Bricks      int      `json:"bricks"`
	Points      int      `json:"points"`
	ErrorBound  float64  `json:"errorBound"`
	Codec       string   `json:"codec"`
	DType       string   `json:"dtype"`
	Generation  uint64   `json:"generation,omitempty"`
	ManifestCRC uint32   `json:"manifestCRC"`
	Shards      []string `json:"shards"`
}

func (g *gateway) info(f *cluster.Field) gatewayFieldInfo {
	bricks, _ := store.NumBricksIn(f.Dims, f.Brick)
	return gatewayFieldInfo{
		Name:        f.Name,
		Dims:        f.Dims,
		Brick:       f.Brick,
		Bricks:      bricks,
		Points:      f.Points(),
		ErrorBound:  f.ErrorBound,
		Codec:       f.Codec,
		DType:       f.DType,
		Generation:  f.Generation,
		ManifestCRC: f.ManifestCRC,
		Shards:      f.Shards,
	}
}

func (g *gateway) handleFields(w http.ResponseWriter, r *http.Request) {
	cat := g.fields()
	out := make([]gatewayFieldInfo, 0, len(cat))
	for _, name := range g.fieldNames() {
		out = append(out, g.info(cat[name]))
	}
	body, finish := jsonBody(w, r)
	json.NewEncoder(body).Encode(map[string]any{"fields": out})
	finish()
}

func (g *gateway) handleField(w http.ResponseWriter, r *http.Request) {
	f, ok := g.fields()[r.PathValue("name")]
	if !ok {
		g.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
		return
	}
	body, finish := jsonBody(w, r)
	json.NewEncoder(body).Encode(g.info(f))
	finish()
}

// account folds one fan-out's traffic stats into the gateway's process
// counters: sub-request and retry totals, plus per-shard read/error/time
// accounting. Region and query fan-outs account identically.
func (g *gateway) account(stats cluster.FanoutStats) {
	g.subReads.Add(int64(stats.SubReads))
	g.retries.Add(int64(stats.Retries))
	g.trafficMu.Lock()
	for shard, t := range stats.ByShard {
		acc := g.traffic[shard]
		if acc == nil {
			acc = &cluster.ShardTraffic{}
			g.traffic[shard] = acc
		}
		acc.Reads += t.Reads
		acc.Errors += t.Errors
		acc.Seconds += t.Seconds
	}
	g.trafficMu.Unlock()
}

// handleRegion answers a region read by fan-out: plan sub-regions along
// brick-ownership boundaries, read each from its owning shard (failing
// over along the placement's preference order), and stitch the slabs into
// one response byte-identical to a single qozd holding the whole store.
func (g *gateway) handleRegion(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("lo") == "" || q.Get("hi") == "" {
		g.httpError(w, r, http.StatusBadRequest, "region needs lo=a,b,... and hi=a,b,... query parameters")
		return
	}
	lo, err := parseCorner(q.Get("lo"))
	if err != nil {
		g.httpError(w, r, http.StatusBadRequest, "lo: %v", err)
		return
	}
	hi, err := parseCorner(q.Get("hi"))
	if err != nil {
		g.httpError(w, r, http.StatusBadRequest, "hi: %v", err)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "raw"
	}
	if format != "raw" && format != "json" {
		g.httpError(w, r, http.StatusBadRequest, "unknown format %q (want raw or json)", format)
		return
	}
	level, ok := parseLevel(w, r, g.httpError)
	if !ok {
		return
	}
	gz := format == "json" && acceptsGzip(r)
	variant := regionVariant(format, gz, level)

	// The stale-retry loop: a fan-out can fail with ErrStale when the
	// shards have advanced past the gateway's catalog (the generation gate
	// refuses every candidate). One catalog refresh re-resolves the field —
	// dims, generation, ETag and all — and the read is retried against the
	// fleet's present, so a client racing an append sees the new data, not
	// an error.
	for attempt := 0; ; attempt++ {
		f, ok := g.fields()[r.PathValue("name")]
		if !ok {
			g.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
			return
		}
		dims := f.Dims
		if len(lo) != len(dims) || len(hi) != len(dims) {
			g.httpError(w, r, http.StatusBadRequest, "region rank %d/%d, field rank %d", len(lo), len(hi), len(dims))
			return
		}
		for i := range dims {
			if lo[i] < 0 || hi[i] > dims[i] || lo[i] >= hi[i] {
				g.httpError(w, r, http.StatusBadRequest, "region [%v,%v) outside field %v", lo, hi, dims)
				return
			}
		}
		// Like the shard role, the served-points bound applies to the
		// level's coarse grid, and an empty coarse grid is the client's
		// mistake, answered before any shard is bothered.
		outDims, points, ok := levelOutDims(lo, hi, level)
		if !ok {
			g.httpError(w, r, http.StatusBadRequest,
				"region [%v,%v) has no points on the level-%d grid", lo, hi, level)
			return
		}
		if g.opts.MaxPoints > 0 && points > g.opts.MaxPoints {
			g.httpError(w, r, http.StatusRequestEntityTooLarge,
				"region holds %d points, limit is %d; split the request", points, g.opts.MaxPoints)
			return
		}

		// Same validator a single-node qozd would mint for this (crc, gen):
		// a client can revalidate against gateway or shard interchangeably.
		etag := regionETag(f.ManifestCRC, f.Generation, f.DType, lo, hi, variant)
		if inmMatches(r.Header.Get("If-None-Match"), etag) {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}

		// Single-flight over the stitched raw bytes. The key carries the
		// catalog's (crc, gen) and the level so herds spanning a catalog
		// refresh never share bytes across generations (and coarse herds
		// never share with full-resolution ones); it omits the format
		// because raw and json responses render from the same slab.
		key := fmt.Sprintf("%s|%08x-%d|%v|%v|l%d", f.Name, f.ManifestCRC, f.Generation, lo, hi, level)
		v, _, err := g.flight.Do(r.Context(), key, func(ctx context.Context) (any, error) {
			ctx = cluster.WithRequestID(ctx, r.Header.Get(requestIDHeader))
			body, stats, err := g.client.ReadRegionLevelRaw(ctx, f, lo, hi, level)
			g.account(stats)
			return body, err
		})
		if err != nil {
			if r.Context().Err() != nil {
				return // client is gone; nobody to answer
			}
			if errors.Is(err, cluster.ErrStale) && attempt == 0 {
				rctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
				rerr := g.refreshCatalog(rctx)
				cancel()
				if rerr == nil {
					continue
				}
			}
			// Failed fan-out: every candidate shard for some sub-region is
			// down, erroring, or stale. The region is retryable the moment a
			// shard recovers, so answer 502 + Retry-After, never a hang or a
			// partially-stitched body.
			w.Header().Set("Retry-After", "1")
			g.httpError(w, r, http.StatusBadGateway, "fan-out failed: %v", err)
			return
		}
		body := v.([]byte)

		w.Header().Set("ETag", etag)
		if level > 1 {
			w.Header().Set("X-Qoz-Level", strconv.Itoa(level))
		}
		var werr error
		if format == "json" {
			// JSON renders from the shared raw slab, so a herd mixing raw and
			// json clients still coalesces into one fan-out.
			if f.DType == "float64" {
				werr = writeRegion(w, outDims, f.DType, f.ErrorBound, leFloat64(body), format, gz)
			} else {
				werr = writeRegion(w, outDims, f.DType, f.ErrorBound, leFloat32(body), format, gz)
			}
		} else {
			// Raw fast path: the stitched slab already is the response body —
			// little-endian samples, row-major, shape hi-lo — so it streams
			// out without a decode/re-encode round trip.
			werr = writeRawBytes(w, outDims, f.DType, f.ErrorBound, body)
		}
		if werr == nil {
			g.regionPts.Add(int64(points))
		}
		return
	}
}

// writeRawBytes streams a stitched raw slab with the same headers a
// single-node writeRegion would attach, so gateway and shard raw
// responses are indistinguishable on the wire.
func writeRawBytes(w http.ResponseWriter, outDims []int, dtype string, bound float64, body []byte) error {
	dimsHeader := make([]string, len(outDims))
	for i, d := range outDims {
		dimsHeader[i] = strconv.Itoa(d)
	}
	w.Header().Set("X-Qoz-Dims", strings.Join(dimsHeader, ","))
	w.Header().Set("X-Qoz-Dtype", dtype)
	w.Header().Set("X-Qoz-Error-Bound", strconv.FormatFloat(bound, 'g', -1, 64))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, err := w.Write(body)
	return err
}

// leFloat32 reinterprets a little-endian raw slab as samples.
func leFloat32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// leFloat64 reinterprets a little-endian raw slab as samples.
func leFloat64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// handleReadyz is the gateway's readiness probe: a non-empty catalog and
// every configured shard answering its own liveness probe. A gateway in
// front of an unreachable fleet stays alive (healthz) but not ready, so a
// balancer drains it instead of feeding it requests that will all 502.
func (g *gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var mu sync.Mutex
	var unreachable []string
	var wg sync.WaitGroup
	for _, shard := range g.opts.Shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/healthz", nil)
			var resp *http.Response
			if err == nil {
				resp, err = g.client.HTTP.Do(req)
			}
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %s", resp.Status)
				}
			}
			if err != nil {
				mu.Lock()
				unreachable = append(unreachable, shard)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Strings(unreachable)
	w.Header().Set("Content-Type", "application/json")
	if len(g.fields()) == 0 || len(unreachable) > 0 {
		// Retryable like every other 503: give the balancer a horizon.
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "not ready", "fields": len(g.fields()), "unreachableShards": unreachable,
		})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"status": "ok", "fields": len(g.fields()), "shards": len(g.opts.Shards),
	})
}

// handleMetrics exposes the gateway's counters, including per-shard
// fan-out traffic so a hot or flapping shard shows up in one scrape.
func (g *gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	emit := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	emit("qozd_requests_total", "HTTP requests received")
	fmt.Fprintf(w, "qozd_requests_total %d\n", g.requests.Load())
	emit("qozd_request_errors_total", "requests answered with an error status (unknown-field 404s excluded)")
	fmt.Fprintf(w, "qozd_request_errors_total %d\n", g.errors.Load())
	emit("qozd_region_points_total", "field points served by region reads")
	fmt.Fprintf(w, "qozd_region_points_total %d\n", g.regionPts.Load())
	emit("qozd_refresh_errors_total", "failed shard-catalog refreshes")
	fmt.Fprintf(w, "qozd_refresh_errors_total %d\n", g.refreshErrs.Load())
	fs := g.flight.Stats()
	emit("qozd_flight_leads_total", "region fan-outs actually executed (single-flight leaders)")
	fmt.Fprintf(w, "qozd_flight_leads_total %d\n", fs.Leads)
	emit("qozd_flight_coalesced_total", "region requests served by another request's fan-out")
	fmt.Fprintf(w, "qozd_flight_coalesced_total %d\n", fs.Coalesced)
	emit("qozd_rate_limited_total", "requests refused with 429, by tenant")
	limitedTenants, limitedCounts := g.guard.limitedByTenant()
	for _, tenant := range limitedTenants {
		fmt.Fprintf(w, "qozd_rate_limited_total{tenant=%q} %d\n", tenant, limitedCounts[tenant])
	}
	emit("qozd_gateway_subreads_total", "shard sub-reads planned across all fan-outs")
	fmt.Fprintf(w, "qozd_gateway_subreads_total %d\n", g.subReads.Load())
	emit("qozd_gateway_retries_total", "sub-read failover attempts beyond the owner shard")
	fmt.Fprintf(w, "qozd_gateway_retries_total %d\n", g.retries.Load())
	fmt.Fprintf(w, "# HELP qozd_gateway_fields fields in the shard catalog\n# TYPE qozd_gateway_fields gauge\n")
	fmt.Fprintf(w, "qozd_gateway_fields %d\n", len(g.fields()))

	g.trafficMu.Lock()
	shards := make([]string, 0, len(g.traffic))
	snap := make(map[string]cluster.ShardTraffic, len(g.traffic))
	for shard, t := range g.traffic {
		shards = append(shards, shard)
		snap[shard] = *t
	}
	g.trafficMu.Unlock()
	sort.Strings(shards)
	emit("qozd_gateway_shard_reads_total", "successful sub-reads by shard")
	for _, s := range shards {
		fmt.Fprintf(w, "qozd_gateway_shard_reads_total{shard=%q} %d\n", s, snap[s].Reads)
	}
	emit("qozd_gateway_shard_errors_total", "failed sub-read attempts by shard")
	for _, s := range shards {
		fmt.Fprintf(w, "qozd_gateway_shard_errors_total{shard=%q} %d\n", s, snap[s].Errors)
	}
	fmt.Fprintf(w, "# HELP qozd_gateway_shard_seconds_total wall time in successful sub-reads by shard\n# TYPE qozd_gateway_shard_seconds_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "qozd_gateway_shard_seconds_total{shard=%q} %g\n", s, snap[s].Seconds)
	}

	// Request latency histogram by {route, status}; the gateway mounts no
	// store, so there is no stage histogram here.
	g.ins.reqHist.WriteProm(w)
}
