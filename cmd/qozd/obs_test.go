package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"qoz/obs"
)

// tracesResponse mirrors the /debug/traces JSON body.
type tracesResponse struct {
	Total  uint64       `json:"total"`
	Traces []*obs.Trace `json:"traces"`
}

func getTraces(t *testing.T, url string) tracesResponse {
	t.Helper()
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	var out tracesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func findTrace(traces []*obs.Trace, id string) *obs.Trace {
	for _, tr := range traces {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// TestGatewayTraceEndToEnd is the tentpole acceptance test: one region
// read through the gateway produces (a) a gateway trace whose fan-out
// span has one "subread" child per planned sub-read, and (b) shard traces
// under the same trace id carrying store stage timings — all retrievable
// from the respective /debug/traces endpoints.
func TestGatewayTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	shards, srvs := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	_, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	const traceID = "trace-obs-1"
	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=32,32,32", nil)
	req.Header.Set("X-Qoz-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region read: %s", resp.Status)
	}

	// Gateway side: the trace exists, its root is the region route, and the
	// fan-out recorded one subread child span per planned sub-read.
	gtr := findTrace(getTraces(t, gts.URL+"/debug/traces?n=100").Traces, traceID)
	if gtr == nil {
		t.Fatal("gateway /debug/traces has no trace for the request id")
	}
	if gtr.Name != "GET region" {
		t.Errorf("gateway trace name %q, want GET region", gtr.Name)
	}
	root := gtr.Spans[0]
	if root.Attrs["route"] != "region" || root.Attrs["status"] != "200" {
		t.Errorf("gateway root span attrs %v, want route=region status=200", root.Attrs)
	}
	var fanout *obs.SpanData
	for i := range gtr.Spans {
		if gtr.Spans[i].Name == "fanout" {
			fanout = &gtr.Spans[i]
		}
	}
	if fanout == nil {
		t.Fatalf("gateway trace has no fanout span: %+v", gtr.Spans)
	}
	planned, err := strconv.Atoi(fanout.Attrs["subreads"])
	if err != nil || planned < 2 {
		t.Fatalf("fanout subreads attr %q, want >= 2 (region spans ownership boundaries)", fanout.Attrs["subreads"])
	}
	subreads := 0
	gets := 0
	for _, sp := range gtr.Spans {
		switch sp.Name {
		case "subread":
			subreads++
			if sp.Parent != fanout.ID {
				t.Errorf("subread span parented to %d, want fanout %d", sp.Parent, fanout.ID)
			}
			if sp.Attrs["shard"] == "" {
				t.Errorf("subread span has no shard attr: %v", sp.Attrs)
			}
			if sp.DurationMS < 0 {
				t.Errorf("subread span never ended: %+v", sp)
			}
		case "shard.get":
			gets++
		}
	}
	if subreads != planned {
		t.Errorf("%d subread child spans, want one per planned sub-read (%d)", subreads, planned)
	}
	if gets < subreads {
		t.Errorf("%d shard.get spans, want >= %d (one per attempt)", gets, subreads)
	}

	// Shard side: each sub-request ran under the same trace id, and the
	// shard's root span carries the store stage breakdown.
	shardTraces := 0
	withStages := 0
	for _, srv := range srvs {
		for _, tr := range srv.ins.rec.Snapshot(0, 0) {
			if tr.ID != traceID {
				continue
			}
			shardTraces++
			if a := tr.Spans[0].Attrs; a["store.decodes"] != "" && a["store.fetches"] != "" && a["store.fetchMs"] != "" {
				withStages++
			}
		}
	}
	if shardTraces < 2 {
		t.Errorf("%d shard traces under the gateway's id, want >= 2 (both shards serve sub-reads)", shardTraces)
	}
	if withStages != shardTraces {
		t.Errorf("%d of %d shard traces carry store stage timings", withStages, shardTraces)
	}
}

// TestMetricsExposition scrapes both roles after live traffic and lints
// the exposition: HELP/TYPE on every family, no duplicates, sorted series,
// well-formed histograms — and two consecutive renders are byte-identical
// (the determinism the sorted emission paths commit to).
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	shards, srvs := startShards(t, mounts, 2, serverOptions{CacheBytes: 32 << 20}, nil)
	gw, gts := startGateway(t, gatewayOptions{Shards: shardURLs(shards)})

	// Traffic: a fan-out read, a 404, and a direct shard read, so route and
	// status labels multiply and the stage histogram fills.
	get(t, gts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=16,16,16")
	get(t, gts.URL+"/v1/fields/nope")
	get(t, shards[0].URL+"/v1/fields/nyx/region?lo=0,0,0&hi=8,8,8")

	for name, url := range map[string]string{
		"shard":   shards[0].URL + "/metrics",
		"gateway": gts.URL + "/metrics",
	} {
		resp, body := get(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s /metrics: %s", name, resp.Status)
		}
		if err := obs.LintExposition(string(body)); err != nil {
			t.Errorf("%s /metrics fails lint: %v", name, err)
		}
		if !strings.Contains(string(body), "qozd_request_duration_seconds_bucket{") {
			t.Errorf("%s /metrics has no request duration histogram", name)
		}
	}
	if body := metricsRender(srvs[0].handleMetrics); !strings.Contains(body, `qozd_store_stage_seconds_bucket{stage="decode"`) {
		t.Error("shard /metrics has no store stage histogram after a region read")
	}

	// Determinism: direct handler renders (which bump no counters) must be
	// byte-identical across calls, for both roles.
	if a, b := metricsRender(srvs[0].handleMetrics), metricsRender(srvs[0].handleMetrics); a != b {
		t.Error("two shard /metrics renders differ")
	}
	if a, b := metricsRender(gw.handleMetrics), metricsRender(gw.handleMetrics); a != b {
		t.Error("two gateway /metrics renders differ")
	}
}

func metricsRender(h func(http.ResponseWriter, *http.Request)) string {
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// TestTracesEndpoint pins /debug/traces behavior: parameters, validation,
// and auth gating alongside the /v1 endpoints.
func TestTracesEndpoint(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}
	srv, err := newServer(mounts, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		get(t, ts.URL+"/v1/fields")
	}
	out := getTraces(t, ts.URL+"/debug/traces")
	if out.Total < 3 || len(out.Traces) < 3 {
		t.Fatalf("traces total=%d len=%d after 3 requests", out.Total, len(out.Traces))
	}
	// Newest first; the head is the /v1/fields request just before this call.
	if out.Traces[0].Name != "GET fields" {
		t.Errorf("head trace %q, want GET fields", out.Traces[0].Name)
	}
	if got := getTraces(t, ts.URL+"/debug/traces?n=1"); len(got.Traces) != 1 {
		t.Errorf("n=1 returned %d traces", len(got.Traces))
	}
	// A min filter far above any local request duration returns nothing.
	if got := getTraces(t, ts.URL+"/debug/traces?min=1h"); len(got.Traces) != 0 {
		t.Errorf("min=1h returned %d traces", len(got.Traces))
	}
	for _, bad := range []string{"?n=0", "?n=x", "?min=fast", "?min=-1s"} {
		resp, _ := get(t, ts.URL+"/debug/traces"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/debug/traces%s: %s, want 400", bad, resp.Status)
		}
	}

	// With auth on, /debug/traces needs the same bearer token as /v1/*.
	authed, err := newServer(mounts, serverOptions{CacheBytes: 32 << 20,
		Guard: guardOptions{AuthToken: "sekrit"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(authed.Close)
	ats := httptest.NewServer(authed)
	t.Cleanup(ats.Close)
	resp, _ := get(t, ats.URL+"/debug/traces")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless /debug/traces: %s, want 401", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodGet, ats.URL+"/debug/traces", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	aresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated /debug/traces: %s", aresp.Status)
	}
}

// TestSlowRequestLog: a request over the -slow-request threshold logs a
// warning that carries the request id and the full span breakdown.
func TestSlowRequestLog(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	var buf bytes.Buffer
	ins := newInstrument(instrumentOptions{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond, // everything is slow
	})
	srv, err := newServer([]mount{{name: "nyx", target: p32}},
		serverOptions{CacheBytes: 32 << 20, Ins: ins})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/fields/nyx/region?lo=0,0,0&hi=8,8,8", nil)
	req.Header.Set("X-Qoz-Request-Id", "slow-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var entry struct {
		Level     string         `json:"level"`
		Msg       string         `json:"msg"`
		RequestID string         `json:"requestId"`
		Route     string         `json:"route"`
		Status    int            `json:"status"`
		Tenant    string         `json:"tenant"`
		Spans     []obs.SpanData `json:"spans"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		if entry.RequestID == "slow-req-1" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no log line for the request; log:\n%s", buf.String())
	}
	if entry.Msg != "slow request" || entry.Level != "WARN" {
		t.Errorf("log %q at %s, want slow request at WARN", entry.Msg, entry.Level)
	}
	if entry.Route != "region" || entry.Status != http.StatusOK || entry.Tenant != "anon" {
		t.Errorf("log fields route=%q status=%d tenant=%q", entry.Route, entry.Status, entry.Tenant)
	}
	if len(entry.Spans) == 0 || entry.Spans[0].Attrs["store.decodes"] == "" {
		t.Errorf("slow log has no span breakdown with stage timings: %+v", entry.Spans)
	}
}

// TestPprofOptIn: /debug/pprof/* serves only when -pprof is set, behind
// the same guard.
func TestPprofOptIn(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}

	off, err := newServer(mounts, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(off.Close)
	offTS := httptest.NewServer(off)
	t.Cleanup(offTS.Close)
	if resp, _ := get(t, offTS.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: %s, want 404", resp.Status)
	}

	on, err := newServer(mounts, serverOptions{CacheBytes: 32 << 20, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(on.Close)
	onTS := httptest.NewServer(on)
	t.Cleanup(onTS.Close)
	if resp, _ := get(t, onTS.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof: %s, want 200", resp.Status)
	}
}

// TestReadyzRetryAfter: a shard whose mount refresh is failing answers
// readyz 503 with a Retry-After, like every other retryable 503.
func TestReadyzRetryAfter(t *testing.T) {
	dir := t.TempDir()
	p32, _ := buildStoreFile(t, dir)
	srv, err := newServer([]mount{{name: "nyx", target: p32}}, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.refreshMu.Lock()
	srv.refreshBad["nyx"] = "origin gone"
	srv.refreshMu.Unlock()
	rec := httptest.NewRecorder()
	srv.handleReadyz(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with failing refresh: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("not-ready 503 has no Retry-After")
	}
}

// TestRouteLabel pins the bounded route classes.
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/fields":             "fields",
		"/v1/fields/nyx":         "field",
		"/v1/fields/nyx/region":  "region",
		"/metrics":               "metrics",
		"/healthz":               "probe",
		"/readyz":                "probe",
		"/debug/traces":          "traces",
		"/debug/pprof/profile":   "pprof",
		"/favicon.ico":           "other",
		"/v1/fields/a/b/unknown": "field",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
