// Command qozd serves region-of-interest reads out of brick stores over
// HTTP: the serving layer that turns the qoz/store library into a
// deployable query service. It mounts one or more store files or URLs
// (an URL mount proxies range reads from an object store, so qozd itself
// never holds the archive) and exposes:
//
//	GET /v1/fields                          list the mounted fields
//	GET /v1/fields/{name}                   manifest: dims, brick, bound, codec, dtype, stats
//	GET /v1/fields/{name}/region?lo=a,b,c&hi=d,e,f[&level=L][&format=raw|json]
//	                                        decode the half-open box [lo, hi)
//	GET /v1/fields/{name}/query?op=gt|lt|range|min|max|hist[&lo=..&hi=..]
//	                                        predicate pushdown: aggregate without download
//	GET /metrics                            Prometheus-style counters
//
// A query answers a predicate over a box (default: the whole field) as a
// small JSON aggregate instead of a point slab: op=gt/lt/range&value= (or
// low=/high=) count the matching points (maxloc=K also returns the first
// K row-major coordinates), op=min/max locate the extremum, and
// op=hist&low=&high=&bins= build a histogram. Stores written at format v5
// carry a per-brick statistics index, and the query decodes only the
// bricks whose error-bound-widened [min, max] straddles the predicate —
// everything else resolves from the index alone (the stat_prune stage and
// qozd_store_bricks_pruned_total count those).
//
// level=L (default 1) asks for the progressive coarse grid: the points of
// the box whose global coordinates are all multiples of 2^(L-1), decoded
// from level-prefix bytes where the store's format (v4) records them and
// bit-identical to subsampling the full-resolution answer. The coarse
// shape comes back in X-Qoz-Dims and the level is echoed in X-Qoz-Level;
// each level is its own representation with its own strong ETag.
//
// Region responses default to raw little-endian samples in the field's
// element type — float32 or float64, named by the manifest's dtype and
// echoed in X-Qoz-Dtype — row-major, shape hi-lo, dims echoed in
// X-Qoz-Dims; format=json wraps the same values in JSON (non-finite
// points as null), gzip-compressed when the client sends Accept-Encoding:
// gzip (raw responses are never content-coded: freshly decoded brick
// bytes barely compress). Responses carry a strong ETag derived from the
// store's (manifest CRC, generation) pair, the region, dtype, and
// encoding; If-None-Match answers 304 without decoding a brick. All
// mounted stores share one decoded-brick LRU cache, so the process's
// decoded memory is bounded by -cache-bytes no matter how many fields are
// mounted or how requests interleave. Each request observes its client's
// disconnect through the request context, and -max-inflight bounds
// concurrent region decodes (excess requests get 503).
//
// Mutable (format v3) stores are served live: -poll N polls every mount
// for newly committed generations — steps appended by a simulation, brick
// rewrites, compactions — and adopts them atomically, so a growing
// dataset serves without remounts. A client revalidating with a
// pre-append ETag gets the full fresh response, not a 304.
//
// -auth-token TOKEN (or the QOZD_TOKEN environment variable) requires
// "Authorization: Bearer TOKEN" on every /v1/* endpoint, compared in
// constant time; /metrics stays open only behind -metrics-public.
// -tenant name=token[:rps[:burst]] adds further named credentials, and
// -rate/-burst give every tenant its own token bucket — a tenant over its
// rate gets 429 with Retry-After while other tenants keep flowing.
// Concurrent identical region requests are single-flighted: one decode
// serves the whole herd. GET /healthz answers liveness and GET /readyz
// answers readiness (mounts refreshing cleanly), both without auth.
// Every response echoes an X-Qoz-Request-Id (client-supplied or
// generated), which error bodies also carry.
//
// With -gateway, qozd serves the same API without mounting anything:
// it discovers fields from -shard URLs (ordinary qozd processes), routes
// each brick to its owner by rendezvous hashing, fans region reads out
// over the shards (forwarding level for coarse reads), and stitches the
// sub-regions back into one response — see qoz/cluster and
// docs/CLUSTER.md.
//
// Either role serves HTTPS when given -tls-cert/-tls-key, and -client-ca
// upgrades that to mutual TLS: clients must present a certificate
// chaining to the CA or the handshake is refused. A gateway dials an
// mTLS shard fleet with -shard-ca (trust anchor for shard certificates)
// and -shard-cert/-shard-key (its own client credential). Bearer tokens
// apply on top: TLS authenticates the hop, tokens authorize the tenant.
//
// Usage:
//
//	qozd -listen :8080 -mount temp=/data/temp.qozb \
//	     -mount vx=https://bucket.example.com/vx.qozb [-cache-bytes N] \
//	     [-workers N] [-max-inflight N] [-max-points N] [-poll 5s] \
//	     [-auth-token T] [-tenant name=token[:rps[:burst]]] [-rate R -burst B] \
//	     [-tls-cert F -tls-key F [-client-ca F]] \
//	     [-metrics-public] [path.qozb ...]
//	qozd -gateway -listen :8080 -shard http://shard0:8080 \
//	     -shard http://shard1:8080 [-shard-token T] [-fanout-attempts N] \
//	     [-shard-ca F] [-shard-cert F -shard-key F] \
//	     [-poll 5s] [-auth-token T] [-rate R] ...
//
// Bare positional paths are mounted under their base name without the
// .qozb extension.
package main

import (
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qoz"
	"qoz/cluster"
	"qoz/store"
)

func main() {
	var mounts mountFlags
	var shards stringsFlag
	var tenants tenantFlags
	fs := flag.NewFlagSet("qozd", flag.ExitOnError)
	fs.Var(&mounts, "mount", "field to serve, as name=path-or-url (repeatable)")
	listen := fs.String("listen", ":8080", "address to serve on")
	cacheBytes := fs.Int64("cache-bytes", store.DefaultCacheBytes, "shared decoded-brick cache budget in bytes across all mounts (<=0 disables)")
	workers := fs.Int("workers", 0, "concurrent brick decodes per request (0 = all cores)")
	maxInflight := fs.Int("max-inflight", 64, "concurrent region requests before 503 (<=0 = unlimited)")
	maxPoints := fs.Int("max-points", 1<<26, "largest region served, in points (<=0 = unlimited)")
	readAhead := fs.Int64("remote-read-ahead", 1<<20, "range-read coalescing window for URL mounts in bytes (<0 disables)")
	mountTimeout := fs.Duration("mount-timeout", 30*time.Second, "deadline for opening each mount (0 = none); a hung origin must not wedge startup")
	authToken := fs.String("auth-token", "", "bearer token required on /v1/* endpoints (default: $QOZD_TOKEN; empty disables auth)")
	fs.Var(&tenants, "tenant", "named tenant credential, as name=token[:rps[:burst]] (repeatable; adds to -auth-token's tenant \"default\")")
	rate := fs.Float64("rate", 0, "per-tenant sustained request rate on /v1/* in requests/second (0 disables rate limiting)")
	burst := fs.Float64("burst", 0, "per-tenant burst size for -rate (0 selects max(1, rate))")
	metricsPublic := fs.Bool("metrics-public", false, "serve /metrics without auth even when a token is set")
	poll := fs.Duration("poll", 0, "interval for polling mounts for new committed generations of mutable (v3) stores (0 disables; in -gateway mode, polls the shard catalog)")
	logFormat := fs.String("log-format", "text", "structured request-log format on stderr: text or json")
	slowRequest := fs.Duration("slow-request", 0, "log a warning with the full span breakdown for requests at least this slow (0 disables)")
	traceRing := fs.Int("trace-ring", 256, "completed request traces retained for GET /debug/traces")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/* (guarded like the /v1 endpoints)")
	tlsCert := fs.String("tls-cert", "", "PEM server certificate: serve HTTPS instead of HTTP (with -tls-key)")
	tlsKey := fs.String("tls-key", "", "private key for -tls-cert")
	clientCA := fs.String("client-ca", "", "PEM CA bundle: require and verify client certificates against it (mTLS; needs -tls-cert)")
	gatewayMode := fs.Bool("gateway", false, "run as a fan-out gateway over -shard URLs instead of serving mounts")
	fs.Var(&shards, "shard", "shard qozd base URL for -gateway mode (repeatable)")
	shardToken := fs.String("shard-token", "", "bearer token the gateway presents to shards (default: $QOZD_SHARD_TOKEN)")
	shardCA := fs.String("shard-ca", "", "PEM CA bundle that shard server certificates must chain to (-gateway mode, https shards)")
	shardCert := fs.String("shard-cert", "", "PEM client certificate the gateway presents to mTLS shards (with -shard-key)")
	shardKey := fs.String("shard-key", "", "private key for -shard-cert")
	fanoutAttempts := fs.Int("fanout-attempts", 2, "distinct shards tried per sub-region before the gateway gives up (1 disables failover)")
	fanoutWorkers := fs.Int("fanout-workers", 0, "concurrent shard sub-reads per region request (0 = one per sub-region)")
	fs.Parse(os.Args[1:])
	if *authToken == "" {
		*authToken = os.Getenv("QOZD_TOKEN")
	}
	if *shardToken == "" {
		*shardToken = os.Getenv("QOZD_SHARD_TOKEN")
	}
	guardOpts := guardOptions{
		AuthToken:     *authToken,
		Tenants:       tenants,
		MetricsPublic: *metricsPublic,
		RateRPS:       *rate,
		RateBurst:     *burst,
	}
	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qozd: %v\n", err)
		os.Exit(2)
	}
	ins := newInstrument(instrumentOptions{
		Logger:        logger,
		SlowRequest:   *slowRequest,
		TraceCapacity: *traceRing,
	})

	hs := &http.Server{
		Addr: *listen,
		// Stalled clients must not hold connections — or -max-inflight
		// slots — forever: reap trickled headers quickly, idle keep-alives
		// eventually, and bound even the largest region download.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      10 * time.Minute,
	}

	if *gatewayMode {
		if len(mounts) > 0 || len(fs.Args()) > 0 {
			fmt.Fprintln(os.Stderr, "qozd: -gateway serves shards, not mounts; drop -mount and positional paths")
			os.Exit(2)
		}
		if len(shards) == 0 {
			fmt.Fprintln(os.Stderr, "qozd: -gateway needs at least one -shard URL")
			os.Exit(2)
		}
		var shardHTTP *http.Client
		if *shardCA != "" || *shardCert != "" || *shardKey != "" {
			var err error
			if shardHTTP, err = shardTLSClient(*shardCA, *shardCert, *shardKey); err != nil {
				fmt.Fprintf(os.Stderr, "qozd: %v\n", err)
				os.Exit(2)
			}
		}
		gw, err := newGateway(gatewayOptions{
			Shards:     shards,
			ShardToken: *shardToken,
			Attempts:   *fanoutAttempts,
			Workers:    *fanoutWorkers,
			MaxPoints:  *maxPoints,
			Guard:      guardOpts,
			Ins:        ins,
			Pprof:      *pprofFlag,
			HTTP:       shardHTTP,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qozd: %v\n", err)
			os.Exit(1)
		}
		if *poll > 0 {
			go gw.refreshLoop(*poll)
			log.Printf("polling shard catalog every %v", *poll)
		}
		log.Printf("qozd gateway listening on %s (%d shards, %d fields)",
			*listen, len(shards), len(gw.fieldNames()))
		hs.Handler = gw
		log.Fatal(serve(hs, *tlsCert, *tlsKey, *clientCA))
	}

	for _, p := range fs.Args() {
		name := strings.TrimSuffix(filepath.Base(p), ".qozb")
		mounts = append(mounts, mount{name: name, target: p})
	}
	if len(mounts) == 0 {
		fmt.Fprintln(os.Stderr, "qozd: nothing to serve; pass -mount name=path-or-url or store paths")
		os.Exit(2)
	}

	srv, err := newServer(mounts, serverOptions{
		CacheBytes:   *cacheBytes,
		Workers:      *workers,
		MaxInflight:  *maxInflight,
		MaxPoints:    *maxPoints,
		ReadAhead:    *readAhead,
		MountTimeout: *mountTimeout,
		Guard:        guardOpts,
		Ins:          ins,
		Pprof:        *pprofFlag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qozd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	if *poll > 0 {
		go srv.refreshLoop(*poll)
		log.Printf("polling mounts for new generations every %v", *poll)
	}
	for _, name := range srv.fieldNames() {
		f := srv.fields[name]
		log.Printf("mounted %s: %s (dims %v, %d bricks)", name, f.target, f.store.Dims(), f.store.NumBricks())
	}
	log.Printf("qozd listening on %s (%d fields, %d MiB shared cache)",
		*listen, len(srv.fields), *cacheBytes>>20)
	hs.Handler = srv
	log.Fatal(serve(hs, *tlsCert, *tlsKey, *clientCA))
}

// mount is one name=target pair.
type mount struct {
	name   string
	target string
}

// mountFlags collects repeated -mount flags.
type mountFlags []mount

func (m *mountFlags) String() string {
	parts := make([]string, len(*m))
	for i, mt := range *m {
		parts[i] = mt.name + "=" + mt.target
	}
	return strings.Join(parts, ",")
}

func (m *mountFlags) Set(v string) error {
	name, target, ok := strings.Cut(v, "=")
	if !ok || name == "" || target == "" {
		return fmt.Errorf("want name=path-or-url, got %q", v)
	}
	*m = append(*m, mount{name: name, target: target})
	return nil
}

// serverOptions configures a server.
type serverOptions struct {
	CacheBytes   int64
	Workers      int
	MaxInflight  int
	MaxPoints    int
	ReadAhead    int64         // remote coalescing window; 0 keeps the store default
	MountTimeout time.Duration // per-mount open deadline; 0 = none
	Guard        guardOptions  // auth tenants and rate limits
	Ins          *instrument   // traces, histograms, request logs; nil builds a silent one
	Pprof        bool          // expose /debug/pprof/* on the role mux
}

// field is one mounted store.
type field struct {
	name   string
	target string
	store  *store.Store
}

// server is the qozd HTTP handler: the mounted stores, the shared cache
// behind them, an admission semaphore, and request counters.
type server struct {
	mux      *http.ServeMux
	fields   map[string]*field
	cache    *store.Cache
	opts     serverOptions
	guard    *guard
	ins      *instrument
	inflight chan struct{}  // nil when unlimited
	flight   cluster.Flight // coalesces identical concurrent region decodes

	requests    atomic.Int64
	rejected    atomic.Int64
	errors      atomic.Int64
	regionPts   atomic.Int64
	refreshErrs atomic.Int64

	// refreshBad tracks mounts whose last generation-refresh poll failed,
	// for /readyz: a shard that cannot follow its stores should be rotated
	// out of a gateway's traffic before it serves stale generations.
	refreshMu  sync.Mutex
	refreshBad map[string]string // mount name → last refresh error
}

// refreshLoop polls every mount for newly committed generations of
// mutable (v3) stores. Region reads keep flowing during a poll: Refresh
// swaps manifests atomically, and the shared cache keys bricks by payload
// offset, so unchanged bricks stay hot across generations.
func (s *server) refreshLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		s.refreshMounts(ctx)
		cancel()
	}
}

// refreshMounts runs one poll pass over every mount.
func (s *server) refreshMounts(ctx context.Context) {
	for _, name := range s.fieldNames() {
		f := s.fields[name]
		advanced, err := f.store.Refresh(ctx)
		s.refreshMu.Lock()
		if err != nil {
			s.refreshBad[name] = err.Error()
		} else {
			delete(s.refreshBad, name)
		}
		s.refreshMu.Unlock()
		if err != nil {
			// A failed refresh leaves the previous generation serving; keep
			// polling — ErrRemoteChanged, though, will repeat until remount.
			s.refreshErrs.Add(1)
			log.Printf("refresh %s: %v", name, err)
			continue
		}
		if advanced {
			log.Printf("refresh %s: generation %d, dims %v", name, f.store.Generation(), f.store.Dims())
		}
	}
}

// newServer opens every mount (files via OpenFile, http(s) URLs via
// OpenURL) over one shared decoded-brick cache and builds the route table.
func newServer(mounts []mount, opts serverOptions) (*server, error) {
	s := &server{
		fields:     make(map[string]*field, len(mounts)),
		cache:      store.NewCache(opts.CacheBytes),
		opts:       opts,
		refreshBad: make(map[string]string),
	}
	var err error
	if s.guard, err = newGuard(opts.Guard); err != nil {
		return nil, err
	}
	if s.ins = opts.Ins; s.ins == nil {
		s.ins = newInstrument(instrumentOptions{})
	}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	// NewCache(<=0) is a disabled cache, so one Options literal covers the
	// -cache-bytes 0 case too.
	so := store.Options{Cache: s.cache, Workers: opts.Workers}
	so.Remote.ReadAhead = opts.ReadAhead
	for _, m := range mounts {
		if _, dup := s.fields[m.name]; dup {
			s.Close()
			return nil, fmt.Errorf("duplicate mount name %q", m.name)
		}
		var st *store.Store
		var err error
		if strings.HasPrefix(m.target, "http://") || strings.HasPrefix(m.target, "https://") {
			ctx, cancel := context.Background(), func() {}
			if opts.MountTimeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, opts.MountTimeout)
			}
			st, err = store.OpenURLContext(ctx, m.target, so)
			cancel()
		} else {
			st, err = store.OpenFile(m.target, so)
		}
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("mount %s: %w", m.name, err)
		}
		s.fields[m.name] = &field{name: m.name, target: m.target, store: st}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/fields", s.handleFields)
	s.mux.HandleFunc("GET /v1/fields/{name}", s.handleField)
	s.mux.HandleFunc("GET /v1/fields/{name}/region", s.handleRegion)
	s.mux.HandleFunc("GET /v1/fields/{name}/query", s.handleQuery)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /debug/traces", s.ins.handleTraces)
	if opts.Pprof {
		registerPprof(s.mux)
	}
	return s, nil
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. Deliberately credential-free and rate-limit-free — an orchestrator
// must never kill a pod because its probe lost an auth race.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz is the readiness probe: every mount's last generation
// refresh succeeded (a store that cannot follow its origin is still
// serving, but should be rotated out of new traffic).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.refreshMu.Lock()
	bad := make(map[string]string, len(s.refreshBad))
	for name, msg := range s.refreshBad {
		bad[name] = msg
	}
	s.refreshMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if len(bad) > 0 {
		// Like every other retryable 503 qozd serves, the not-ready answer
		// names a retry horizon — one poll interval is a reasonable bound
		// for a refresh to recover.
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "refresh failing", "mounts": bad})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ok", "fields": len(s.fields)})
}

// Close releases every mounted store.
func (s *server) Close() {
	for _, f := range s.fields {
		f.store.Close()
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := ensureRequestID(w, r)
	// The instrument opens the request's root trace span (trace id = the
	// correlation id) and registers the store stage observer, so fan-in
	// from here — single-flight leaders included, which run under a
	// value-preserving detached context — records into one trace.
	s.ins.serve(w, r, id, true, func(w http.ResponseWriter, r *http.Request) string {
		// Probes bypass auth and rate limits: see handleHealthz.
		if r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			tenant, ok := s.guard.admit(w, r)
			if !ok {
				return tenant
			}
			s.mux.ServeHTTP(w, r)
			return tenant
		}
		s.mux.ServeHTTP(w, r)
		return ""
	})
}

func (s *server) fieldNames() []string {
	names := make([]string, 0, len(s.fields))
	for n := range s.fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// httpError counts and writes a JSON error response (which carries the
// request's correlation id). Unknown-field 404s are deliberately left out
// of the error counter — they are client typos and scanner noise, not
// server faults worth alerting on.
func (s *server) httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	if code != http.StatusNotFound {
		s.errors.Add(1)
	}
	jsonError(w, r, code, format, args...)
}

// fieldInfo is the JSON manifest of one mounted field.
type fieldInfo struct {
	Name       string  `json:"name"`
	Target     string  `json:"target"`
	Dims       []int   `json:"dims"`
	Brick      []int   `json:"brick"`
	Bricks     int     `json:"bricks"`
	Points     int     `json:"points"`
	ErrorBound float64 `json:"errorBound"`
	Codec      string  `json:"codec"`
	DType      string  `json:"dtype"`
	// Mutable marks a v3 store; Generation is the committed generation
	// currently served (it advances when -poll picks up new commits).
	Mutable    bool   `json:"mutable,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// ManifestCRC is the manifest fingerprint of the served generation —
	// with Generation it names the store content exactly (the same pair
	// region ETags embed), letting a gateway detect a shard serving a
	// different generation than its catalog.
	ManifestCRC uint32      `json:"manifestCRC"`
	Stats       store.Stats `json:"stats"`
}

func (s *server) info(f *field) fieldInfo {
	st := f.store
	points := 1
	for _, d := range st.Dims() {
		points *= d
	}
	crc, gen := st.ManifestVersion()
	return fieldInfo{
		Name:        f.name,
		Target:      f.target,
		Dims:        st.Dims(),
		Brick:       st.BrickShape(),
		Bricks:      st.NumBricks(),
		Points:      points,
		ErrorBound:  st.ErrorBound(),
		Codec:       st.Codec().Name(),
		DType:       st.DType(),
		Mutable:     gen > 0,
		Generation:  gen,
		ManifestCRC: crc,
		Stats:       st.Stats(),
	}
}

// acceptsGzip reports whether the request's Accept-Encoding negotiates
// gzip (present, and not refused with q=0).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// jsonBody negotiates the body writer for a JSON response: gzip when the
// client accepts it, identity otherwise. JSON region payloads compress
// several-fold (decimal literals are redundancy the decoder already
// removed once); raw little-endian brick bytes are never wrapped — they
// are served straight from the codec's output and barely compress.
func jsonBody(w http.ResponseWriter, r *http.Request) (io.Writer, func() error) {
	w.Header().Add("Vary", "Accept-Encoding")
	w.Header().Set("Content-Type", "application/json")
	if !acceptsGzip(r) {
		return w, func() error { return nil }
	}
	w.Header().Set("Content-Encoding", "gzip")
	gz := gzip.NewWriter(w)
	return gz, gz.Close
}

// handleFields lists every mounted field.
func (s *server) handleFields(w http.ResponseWriter, r *http.Request) {
	out := make([]fieldInfo, 0, len(s.fields))
	for _, name := range s.fieldNames() {
		out = append(out, s.info(s.fields[name]))
	}
	body, finish := jsonBody(w, r)
	json.NewEncoder(body).Encode(map[string]any{"fields": out})
	finish()
}

// handleField describes one field.
func (s *server) handleField(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fields[r.PathValue("name")]
	if !ok {
		s.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
		return
	}
	body, finish := jsonBody(w, r)
	json.NewEncoder(body).Encode(s.info(f))
	finish()
}

// parseCorner parses "a,b,c" into region coordinates.
func parseCorner(v string) ([]int, error) {
	parts := strings.Split(v, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid coordinate %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// handleRegion decodes and returns the box [lo, hi) of one field.
func (s *server) handleRegion(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fields[r.PathValue("name")]
	if !ok {
		s.httpError(w, r, http.StatusNotFound, "unknown field %q", r.PathValue("name"))
		return
	}
	q := r.URL.Query()
	if q.Get("lo") == "" || q.Get("hi") == "" {
		s.httpError(w, r, http.StatusBadRequest, "region needs lo=a,b,... and hi=a,b,... query parameters")
		return
	}
	lo, err := parseCorner(q.Get("lo"))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "lo: %v", err)
		return
	}
	hi, err := parseCorner(q.Get("hi"))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "hi: %v", err)
		return
	}
	dims := f.store.Dims()
	if len(lo) != len(dims) || len(hi) != len(dims) {
		s.httpError(w, r, http.StatusBadRequest, "region rank %d/%d, field rank %d", len(lo), len(hi), len(dims))
		return
	}
	for i := range dims {
		if lo[i] < 0 || hi[i] > dims[i] || lo[i] >= hi[i] {
			s.httpError(w, r, http.StatusBadRequest, "region [%v,%v) outside field %v", lo, hi, dims)
			return
		}
	}
	level, ok := parseLevel(w, r, s.httpError)
	if !ok {
		return
	}
	// The response grid: at level 1 the box itself, at level L the points
	// of the box whose global coordinates are multiples of 2^(L-1). The
	// -max-points bound applies to the points actually served, so a coarse
	// read of a region too large to serve at full resolution still goes
	// through — that is the point of progressive reads.
	outDims, points, ok := levelOutDims(lo, hi, level)
	if !ok {
		s.httpError(w, r, http.StatusBadRequest,
			"region [%v,%v) has no points on the level-%d grid", lo, hi, level)
		return
	}
	if s.opts.MaxPoints > 0 && points > s.opts.MaxPoints {
		s.httpError(w, r, http.StatusRequestEntityTooLarge,
			"region holds %d points, limit is %d; split the request", points, s.opts.MaxPoints)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "raw"
	}
	if format != "raw" && format != "json" {
		s.httpError(w, r, http.StatusBadRequest, "unknown format %q (want raw or json)", format)
		return
	}

	// Conditional GET: the response is a pure function of (store content,
	// region, dtype, encoding), so a strong ETag over exactly those lets a
	// revalidating client skip the decode — and the transfer — entirely.
	// The validator is derived from the (manifest CRC, generation) pair of
	// the store's current committed generation: a mutable store that
	// advanced (poll-refreshed append, rewrite, compaction) moves the ETag,
	// so a client revalidating with the old one gets the full fresh
	// response, never a 304 affirming stale data. The header is attached
	// only to the 304 and 200 paths below: a shed or failed request
	// carries no validator, because ETag describes the selected
	// representation and an error body is not it. The gzip variant of the
	// JSON encoding is its own representation and gets its own validator.
	gz := format == "json" && acceptsGzip(r)
	variant := regionVariant(format, gz, level)
	crc, gen := f.store.ManifestVersion()
	etag := regionETag(crc, gen, f.store.DType(), lo, hi, variant)
	if inmMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	// Single-flight: concurrent identical requests — same field, box,
	// level, and store generation — share one decode. The key carries
	// (crc, gen) so a herd spanning a poll refresh never mixes
	// generations: old and new requests lead separate flights. Admission
	// control sits inside the flight function so a coalesced herd of N
	// requests consumes one -max-inflight slot, not N; a shed leader sheds
	// the whole herd (every waiter gets the same retryable 503). The
	// leader runs under a context that survives any individual client's
	// disconnect and is cancelled only when the last waiter is gone.
	key := fmt.Sprintf("%s|%08x-%d|%v|%v|l%d", f.name, crc, gen, lo, hi, level)
	v, _, err := s.flight.Do(r.Context(), key, func(ctx context.Context) (any, error) {
		// Admission control: bound concurrent decodes rather than queue
		// unboundedly — a shed request is retryable, an OOM is not.
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.rejected.Add(1)
				return nil, errShed
			}
		}
		if level > 1 {
			if f.store.Float64() {
				data, _, err := f.store.ReadRegionLevelFloat64(ctx, lo, hi, level)
				return data, err
			}
			data, _, err := f.store.ReadRegionLevel(ctx, lo, hi, level)
			return data, err
		}
		if f.store.Float64() {
			data, err := f.store.ReadRegionFloat64(ctx, lo, hi)
			return data, err
		}
		data, err := f.store.ReadRegion(ctx, lo, hi)
		return data, err
	})
	if err != nil {
		s.regionError(w, r, err)
		return
	}

	// The response carries the field's own element type: float64 stores
	// answer with 8-byte samples (raw) or full-precision literals (json),
	// float32 stores exactly as before.
	w.Header().Set("ETag", etag)
	if level > 1 {
		w.Header().Set("X-Qoz-Level", strconv.Itoa(level))
	}
	var werr error
	switch data := v.(type) {
	case []float64:
		werr = writeRegion(w, outDims, f.store.DType(), f.store.ErrorBound(), data, format, gz)
	case []float32:
		werr = writeRegion(w, outDims, f.store.DType(), f.store.ErrorBound(), data, format, gz)
	}
	if werr != nil {
		return // client went away mid-body
	}
	s.regionPts.Add(int64(points))
}

// errShed marks a decode refused at -max-inflight capacity; it surfaces
// to every coalesced waiter as the same retryable 503.
var errShed = errors.New("server at -max-inflight capacity")

// regionError answers a failed region decode, staying silent for a client
// that already disconnected.
func (s *server) regionError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		return // client is gone; nobody to answer
	}
	if errors.Is(err, errShed) {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, "server at -max-inflight capacity")
		return
	}
	s.httpError(w, r, http.StatusInternalServerError, "read region: %v", err)
}

// parseLevel reads the optional level query parameter (default 1 = full
// resolution), answering the 400 itself on a bad value. Both roles parse
// it identically so shard and gateway reject the same requests.
func parseLevel(w http.ResponseWriter, r *http.Request,
	httpError func(http.ResponseWriter, *http.Request, int, string, ...any)) (int, bool) {
	lv := r.URL.Query().Get("level")
	if lv == "" {
		return 1, true
	}
	n, err := strconv.Atoi(lv)
	if err != nil || n < 1 || n > store.MaxReadLevel {
		httpError(w, r, http.StatusBadRequest,
			"level must be an integer in [1,%d], got %q", store.MaxReadLevel, lv)
		return 0, false
	}
	return n, true
}

// levelOutDims returns the response grid of a level-L read of [lo, hi):
// per dimension, the count of multiples of stride 2^(L-1) inside the box
// (at level 1, simply hi-lo). ok is false when some dimension holds none.
func levelOutDims(lo, hi []int, level int) (outDims []int, points int, ok bool) {
	stride := 1 << (level - 1)
	outDims = make([]int, len(lo))
	points = 1
	for i := range lo {
		outDims[i] = (hi[i]-1)/stride + 1 - (lo[i]+stride-1)/stride
		if outDims[i] <= 0 {
			return nil, 0, false
		}
		points *= outDims[i]
	}
	return outDims, points, true
}

// regionVariant names the encoding variant an ETag embeds: the format,
// the gzip content coding, and — for progressive reads — the level, each
// of which selects a different representation of the same region.
func regionVariant(format string, gz bool, level int) string {
	if gz {
		format += "+gzip"
	}
	if level > 1 {
		format += fmt.Sprintf("+l%d", level)
	}
	return format
}

// regionETag derives the strong validator of a region response: the store
// manifest fingerprint and generation (content identity, read as one
// consistent pair), the box, the element type, and the encoding variant
// (including gzip and the progressive level). Any of these changing
// changes the bytes, and nothing else does. The gateway computes the same
// validator from its catalog's (crc, gen), so a region served via fan-out
// revalidates against a single-node response and vice versa.
func regionETag(crc uint32, gen uint64, dtype string, lo, hi []int, variant string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `"%08x-g%d-`, crc, gen)
	for i := range lo {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", lo[i])
	}
	b.WriteByte('-')
	for i := range hi {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", hi[i])
	}
	fmt.Fprintf(&b, "-%s-%s"+`"`, dtype, variant)
	return b.String()
}

// inmMatches reports whether an If-None-Match header matches etag: the
// wildcard, or a list containing it under the weak comparison RFC 9110
// §13.1.2 prescribes for If-None-Match — a W/ prefix on the client's
// validator (e.g. added by a transforming intermediary) is ignored, so
// revalidation still short-circuits to 304.
func inmMatches(inm, etag string) bool {
	if inm == "" {
		return false
	}
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	for _, c := range strings.Split(inm, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == etag {
			return true
		}
	}
	return false
}

// writeRegion streams a decoded region in the requested format. Raw is
// little-endian samples at the field's element width, never
// content-coded — those bytes are freshly decoded output and barely
// compress; json marshals by hand because encoding/json refuses the
// NaN/±Inf the escape envelope deliberately preserves — non-finite points
// become null — and is gzip-wrapped when gz is set (negotiated via
// Accept-Encoding: decimal literals compress several-fold). Both paths
// stream in bounded chunks instead of materializing a second copy of the
// region as bytes.
func writeRegion[T qoz.Float](w http.ResponseWriter, outDims []int, dtype string, bound float64, data []T, format string, gz bool) error {
	elem := 4
	if dtype == "float64" {
		elem = 8
	}
	dimsHeader := make([]string, len(outDims))
	for i, d := range outDims {
		dimsHeader[i] = strconv.Itoa(d)
	}
	w.Header().Set("X-Qoz-Dims", strings.Join(dimsHeader, ","))
	w.Header().Set("X-Qoz-Dtype", dtype)
	w.Header().Set("X-Qoz-Error-Bound", strconv.FormatFloat(bound, 'g', -1, 64))
	if format == "json" {
		w.Header().Add("Vary", "Accept-Encoding")
		w.Header().Set("Content-Type", "application/json")
		out := io.Writer(w)
		var zw *gzip.Writer
		if gz {
			w.Header().Set("Content-Encoding", "gzip")
			zw = gzip.NewWriter(w)
			out = zw
		}
		body := make([]byte, 0, 64<<10)
		body = append(body, `{"dims":[`...)
		for i, d := range outDims {
			if i > 0 {
				body = append(body, ',')
			}
			body = strconv.AppendInt(body, int64(d), 10)
		}
		body = append(body, `],"dtype":"`...)
		body = append(body, dtype...)
		body = append(body, `","data":[`...)
		for i, v := range data {
			if i > 0 {
				body = append(body, ',')
			}
			if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
				body = append(body, `null`...)
			} else {
				body = strconv.AppendFloat(body, f, 'g', -1, elem*8)
			}
			if len(body) >= 63<<10 {
				if _, err := out.Write(body); err != nil {
					return err
				}
				body = body[:0]
			}
		}
		body = append(body, `]}`...)
		if _, err := out.Write(body); err != nil {
			return err
		}
		if zw != nil {
			return zw.Close()
		}
		return nil
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(elem*len(data)))
	var chunk [64 << 10]byte
	for off := 0; off < len(data); {
		n := min(len(chunk)/elem, len(data)-off)
		for i := 0; i < n; i++ {
			if elem == 8 {
				binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(float64(data[off+i])))
			} else {
				binary.LittleEndian.PutUint32(chunk[4*i:], math.Float32bits(float32(data[off+i])))
			}
		}
		if _, err := w.Write(chunk[:elem*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// handleMetrics exposes Prometheus-style counters: per-field store stats
// plus process-wide request accounting.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	emit := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	emit("qozd_requests_total", "HTTP requests received")
	fmt.Fprintf(w, "qozd_requests_total %d\n", s.requests.Load())
	emit("qozd_requests_rejected_total", "region requests shed at -max-inflight capacity")
	fmt.Fprintf(w, "qozd_requests_rejected_total %d\n", s.rejected.Load())
	emit("qozd_request_errors_total", "requests answered with an error status (unknown-field 404s excluded)")
	fmt.Fprintf(w, "qozd_request_errors_total %d\n", s.errors.Load())
	emit("qozd_region_points_total", "field points served by region reads")
	fmt.Fprintf(w, "qozd_region_points_total %d\n", s.regionPts.Load())
	emit("qozd_refresh_errors_total", "failed generation-refresh polls across all mounts")
	fmt.Fprintf(w, "qozd_refresh_errors_total %d\n", s.refreshErrs.Load())
	fs := s.flight.Stats()
	emit("qozd_flight_leads_total", "region decodes actually executed (single-flight leaders)")
	fmt.Fprintf(w, "qozd_flight_leads_total %d\n", fs.Leads)
	emit("qozd_flight_coalesced_total", "region requests served by another request's decode")
	fmt.Fprintf(w, "qozd_flight_coalesced_total %d\n", fs.Coalesced)
	emit("qozd_rate_limited_total", "requests refused with 429, by tenant")
	limitedTenants, limitedCounts := s.guard.limitedByTenant()
	for _, tenant := range limitedTenants {
		fmt.Fprintf(w, "qozd_rate_limited_total{tenant=%q} %d\n", tenant, limitedCounts[tenant])
	}
	fmt.Fprintf(w, "# HELP qozd_cache_bytes decoded bytes held by the shared brick cache\n# TYPE qozd_cache_bytes gauge\n")
	fmt.Fprintf(w, "qozd_cache_bytes %d\n", s.cache.Bytes())
	fmt.Fprintf(w, "# HELP qozd_store_generation committed generation served per field (0 = write-once store)\n# TYPE qozd_store_generation gauge\n")
	for _, name := range s.fieldNames() {
		fmt.Fprintf(w, "qozd_store_generation{field=%q} %d\n", name, s.fields[name].store.Generation())
	}

	// One Stats snapshot per field, so the five per-field lines of a scrape
	// reconcile with each other instead of racing active reads.
	names := s.fieldNames()
	snaps := make(map[string]store.Stats, len(names))
	for _, name := range names {
		snaps[name] = s.fields[name].store.Stats()
	}
	counters := []struct {
		name, help string
		value      func(store.Stats) int64
	}{
		{"qozd_store_bricks_decoded_total", "brick decompressions (cache misses)", func(st store.Stats) int64 { return st.BricksDecoded }},
		{"qozd_store_bricks_pruned_total", "query bricks resolved from the statistics index without decoding", func(st store.Stats) int64 { return st.BricksPruned }},
		{"qozd_store_bricks_read_total", "bricks served to region reads", func(st store.Stats) int64 { return st.BricksRead }},
		{"qozd_store_cache_hits_total", "bricks served from the decoded-brick cache", func(st store.Stats) int64 { return st.CacheHits }},
		{"qozd_store_remote_ranges_total", "HTTP range requests issued to remote stores", func(st store.Stats) int64 { return st.RemoteRanges }},
		{"qozd_store_remote_bytes_total", "payload bytes fetched from remote stores", func(st store.Stats) int64 { return st.RemoteBytes }},
	}
	for _, m := range counters {
		emit(m.name, m.help)
		for _, name := range names {
			fmt.Fprintf(w, "%s{field=%q} %d\n", m.name, name, m.value(snaps[name]))
		}
	}

	// Latency histograms: request duration by {route, status}, and store
	// stage timings (payload fetch, brick decode) by {stage}.
	s.ins.reqHist.WriteProm(w)
	s.ins.stageHist.WriteProm(w)
}
