package main

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testPKI is an in-process certificate authority with one server and one
// client leaf, written as PEM files so the tests exercise exactly the
// file-loading paths the -shard-ca/-shard-cert/-shard-key and
// -tls-cert/-tls-key/-client-ca flags use.
type testPKI struct {
	caPEM                     string // CA certificate (both trust anchors)
	serverCert, serverKey     string
	clientCert, clientKey     string
	strangerCert, strangerKey string // leaf from an unrelated CA
}

// newTestPKI mints the whole hierarchy into dir.
func newTestPKI(t *testing.T, dir string) testPKI {
	t.Helper()
	caKey, caDER := selfSignedCA(t, "qozd-test-ca")
	ca, err := x509.ParseCertificate(caDER)
	if err != nil {
		t.Fatal(err)
	}
	srvCert, srvKey := issueLeaf(t, ca, caKey, x509.ExtKeyUsageServerAuth)
	cliCert, cliKey := issueLeaf(t, ca, caKey, x509.ExtKeyUsageClientAuth)

	// An unrelated CA signs the stranger: structurally valid, chains to
	// nothing the fleet trusts.
	strangerCAKey, strangerCADER := selfSignedCA(t, "unrelated-ca")
	strangerCA, err := x509.ParseCertificate(strangerCADER)
	if err != nil {
		t.Fatal(err)
	}
	strCert, strKey := issueLeaf(t, strangerCA, strangerCAKey, x509.ExtKeyUsageClientAuth)

	p := testPKI{
		caPEM:        writePEM(t, dir, "ca.pem", "CERTIFICATE", caDER),
		serverCert:   writePEM(t, dir, "server.pem", "CERTIFICATE", srvCert),
		clientCert:   writePEM(t, dir, "client.pem", "CERTIFICATE", cliCert),
		strangerCert: writePEM(t, dir, "stranger.pem", "CERTIFICATE", strCert),
	}
	p.serverKey = writeKeyPEM(t, dir, "server.key", srvKey)
	p.clientKey = writeKeyPEM(t, dir, "client.key", cliKey)
	p.strangerKey = writeKeyPEM(t, dir, "stranger.key", strKey)
	return p
}

func selfSignedCA(t *testing.T, cn string) (*ecdsa.PrivateKey, []byte) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: cn},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return key, der
}

func issueLeaf(t *testing.T, ca *x509.Certificate, caKey *ecdsa.PrivateKey,
	usage x509.ExtKeyUsage) ([]byte, *ecdsa.PrivateKey) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: "qozd-test-leaf"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{usage},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:     []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca, &key.PublicKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	return der, key
}

func writePEM(t *testing.T, dir, name, blockType string, der []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, pem.EncodeToMemory(&pem.Block{Type: blockType, Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeKeyPEM(t *testing.T, dir, name string, key *ecdsa.PrivateKey) string {
	t.Helper()
	der, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return writePEM(t, dir, name, "EC PRIVATE KEY", der)
}

// startTLSShard serves one qozd shard over HTTPS with the given TLS
// configuration (client verification included), mirroring what -tls-cert/
// -tls-key/-client-ca wire up on a real listener.
func startTLSShard(t *testing.T, mounts []mount, cfg *tls.Config) *httptest.Server {
	t.Helper()
	srv, err := newServer(mounts, serverOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewUnstartedServer(srv)
	ts.TLS = cfg.Clone()
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterMTLS is the mTLS handshake e2e: shards serve HTTPS and
// require client certificates chaining to the fleet CA; a gateway holding
// -shard-ca/-shard-cert/-shard-key reads through them byte-identically,
// while a bare client, a gateway without a client certificate, and a
// client presenting a certificate from an unrelated CA are all refused at
// the handshake — before any request line is parsed.
func TestClusterMTLS(t *testing.T) {
	dir := t.TempDir()
	pki := newTestPKI(t, dir)
	p32, _ := buildStoreFile(t, dir)
	mounts := []mount{{name: "nyx", target: p32}}

	srvCfg, err := serverTLSConfig(pki.serverCert, pki.serverKey, pki.caPEM)
	if err != nil {
		t.Fatalf("serverTLSConfig: %v", err)
	}
	if srvCfg.ClientAuth != tls.RequireAndVerifyClientCert {
		t.Fatalf("client-ca set but ClientAuth is %v", srvCfg.ClientAuth)
	}
	shard1 := startTLSShard(t, mounts, srvCfg)
	shard2 := startTLSShard(t, mounts, srvCfg)
	shardList := []string{shard1.URL, shard2.URL}

	// The full credential: fleet CA as root, client pair presented.
	mtlsHTTP, err := shardTLSClient(pki.caPEM, pki.clientCert, pki.clientKey)
	if err != nil {
		t.Fatalf("shardTLSClient: %v", err)
	}
	gw, gts := startGateway(t, gatewayOptions{Shards: shardList, HTTP: mtlsHTTP})

	const region = "/v1/fields/nyx/region?lo=1,2,3&hi=31,30,29"
	_, want := getWith(t, mtlsHTTP, shard1.URL+region)
	resp, got := get(t, gts.URL+region)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway read over mTLS: %s: %s", resp.Status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway body over mTLS differs from direct shard read")
	}
	gw.trafficMu.Lock()
	served := 0
	for _, tr := range gw.traffic {
		if tr.Reads > 0 {
			served++
		}
	}
	gw.trafficMu.Unlock()
	if served != 2 {
		t.Errorf("%d shards served over mTLS, want 2", served)
	}

	// No client certificate: the handshake itself must fail — the shard
	// never sees an HTTP request to answer.
	bareHTTP, err := shardTLSClient(pki.caPEM, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bareHTTP.Get(shard1.URL + "/v1/fields"); err == nil {
		t.Error("certificate-less client was admitted to an mTLS shard")
	}
	// A certificate from an unrelated CA is refused just the same.
	strangerHTTP, err := shardTLSClient(pki.caPEM, pki.strangerCert, pki.strangerKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strangerHTTP.Get(shard1.URL + "/v1/fields"); err == nil {
		t.Error("client with an untrusted certificate was admitted to an mTLS shard")
	}
	// A gateway built without the client pair cannot even learn the
	// catalog.
	if _, err := newGateway(gatewayOptions{Shards: shardList, HTTP: bareHTTP}); err == nil {
		t.Error("gateway without a client certificate built a catalog from an mTLS fleet")
	}
}

// getWith is get over a specific client (the mTLS one).
func getWith(t *testing.T, hc *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, buf.Bytes()
}

// TestServeTLSFlagValidation pins the flag contract: -client-ca without a
// server certificate is a configuration error, not silent plain HTTP.
func TestServeTLSFlagValidation(t *testing.T) {
	hs := &http.Server{Addr: "127.0.0.1:0"}
	if err := serve(hs, "", "", "some-ca.pem"); err == nil {
		t.Fatal("serve accepted -client-ca without -tls-cert")
	}
	if err := serve(hs, "/nonexistent.pem", "/nonexistent.key", ""); err == nil {
		t.Fatal("serve accepted an unreadable certificate pair")
	}
}
