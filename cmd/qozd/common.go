// Shared serving plumbing used by both qozd roles (shard and gateway):
// tenant credentials, per-tenant rate limiting, request-id correlation,
// and the JSON error shape. Both roles guard their endpoints identically,
// so a client cannot tell — and need not care — which role answered 401
// or 429.
package main

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qoz/cluster"
)

// requestIDHeader correlates one logical request across gateway, shards,
// and logs: the gateway (or any first hop) generates it, every hop echoes
// it in the response headers, and error bodies carry it, so a multi-node
// failure is greppable fleet-wide by one id.
const requestIDHeader = "X-Qoz-Request-Id"

// ensureRequestID returns the request's correlation id, generating one
// when the client didn't send one, and echoes it on the response. The id
// is also written back into the request headers so downstream handlers
// (and the gateway's shard fan-out) read one consistent value.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := sanitizeRequestID(r.Header.Get(requestIDHeader))
	if id == "" {
		var b [8]byte
		rand.Read(b[:])
		id = hex.EncodeToString(b[:])
	}
	r.Header.Set(requestIDHeader, id)
	w.Header().Set(requestIDHeader, id)
	return id
}

// sanitizeRequestID bounds a client-supplied id and strips anything that
// could smuggle header or log structure; a hostile id is dropped (a fresh
// one is generated) rather than propagated fleet-wide.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return id
}

// jsonError writes the uniform error body: the message plus the request's
// correlation id, so a client-side error report alone identifies the
// server-side log lines.
func jsonError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{
		"error":     fmt.Sprintf(format, args...),
		"requestId": r.Header.Get(requestIDHeader),
	})
}

// tenantCred is one tenant's credential and (optional) bucket override.
type tenantCred struct {
	name  string
	token string
	rate  cluster.RateConfig // zero RPS = use the guard default
}

// tenantFlags collects repeated -tenant name=token[:rps[:burst]] flags.
type tenantFlags []tenantCred

func (t *tenantFlags) String() string {
	names := make([]string, len(*t))
	for i, c := range *t {
		names[i] = c.name
	}
	return strings.Join(names, ",")
}

func (t *tenantFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=token[:rps[:burst]], got %q", v)
	}
	c := tenantCred{name: name}
	parts := strings.Split(rest, ":")
	c.token = parts[0]
	if c.token == "" {
		return fmt.Errorf("tenant %q: empty token", name)
	}
	if len(parts) > 3 {
		return fmt.Errorf("tenant %q: want token[:rps[:burst]]", name)
	}
	if len(parts) >= 2 {
		rps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rps < 0 {
			return fmt.Errorf("tenant %q: invalid rps %q", name, parts[1])
		}
		// A tenant declared with an explicit rate of 0 is exempt (RPS -1
		// sentinels "unlimited" to the limiter; 0 would mean "default").
		if rps == 0 {
			rps = -1
		}
		c.rate.RPS = rps
	}
	if len(parts) == 3 {
		burst, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || burst <= 0 {
			return fmt.Errorf("tenant %q: invalid burst %q", name, parts[2])
		}
		c.rate.Burst = burst
	}
	*t = append(*t, c)
	return nil
}

// stringsFlag collects a repeatable plain-string flag (-shard).
type stringsFlag []string

func (s *stringsFlag) String() string { return strings.Join(*s, ",") }
func (s *stringsFlag) Set(v string) error {
	v = strings.TrimRight(v, "/")
	if v == "" {
		return fmt.Errorf("empty value")
	}
	*s = append(*s, v)
	return nil
}

// guardOptions configures a guard.
type guardOptions struct {
	// AuthToken is the legacy single credential; it becomes tenant
	// "default". Empty plus no Tenants disables auth.
	AuthToken string
	// Tenants are named credentials ( -tenant ), checked alongside
	// AuthToken.
	Tenants []tenantCred
	// MetricsPublic keeps /metrics credential-free when auth is on.
	MetricsPublic bool
	// RateRPS/RateBurst shape every tenant's token bucket; RateRPS <= 0
	// disables rate limiting (tenant overrides still apply).
	RateRPS, RateBurst float64
}

// guard enforces bearer auth (mapping tokens to tenant names) and
// per-tenant token-bucket rate limits in front of a role's mux.
type guard struct {
	tenants       []tenantCred // empty = auth disabled
	metricsPublic bool
	limiter       *cluster.Limiter

	mu      sync.Mutex
	limited map[string]int64 // tenant → requests refused with 429
}

func newGuard(opts guardOptions) (*guard, error) {
	g := &guard{metricsPublic: opts.MetricsPublic, limited: map[string]int64{}}
	if opts.AuthToken != "" {
		g.tenants = append(g.tenants, tenantCred{name: "default", token: opts.AuthToken})
	}
	seen := map[string]bool{}
	for _, t := range opts.Tenants {
		if t.name == "default" && opts.AuthToken != "" || seen[t.name] {
			return nil, fmt.Errorf("duplicate tenant %q", t.name)
		}
		seen[t.name] = true
		g.tenants = append(g.tenants, t)
	}
	g.limiter = cluster.NewLimiter(opts.RateRPS, opts.RateBurst)
	for _, t := range g.tenants {
		if t.rate.RPS != 0 {
			g.limiter.SetTenant(t.name, t.rate)
		}
	}
	return g, nil
}

// tenant resolves the request's bearer token to a tenant name. With auth
// disabled every request is tenant "anon". Comparison is constant-time
// per credential so response timing cannot leak token bytes.
func (g *guard) tenant(r *http.Request) (string, bool) {
	if len(g.tenants) == 0 {
		return "anon", true
	}
	token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return "", false
	}
	// Every candidate is compared (no early exit), so timing reveals only
	// the tenant count, which is not a secret.
	match := ""
	for _, t := range g.tenants {
		if subtle.ConstantTimeCompare([]byte(token), []byte(t.token)) == 1 {
			match = t.name
		}
	}
	return match, match != ""
}

// admit runs the full front door for one request: auth (except /metrics
// behind MetricsPublic) and the tenant's token bucket. It writes the 401
// or 429 itself and reports whether the request may proceed, along with
// the tenant it resolved to.
func (g *guard) admit(w http.ResponseWriter, r *http.Request) (tenant string, ok bool) {
	if g.metricsPublic && r.URL.Path == "/metrics" {
		return "anon", true
	}
	tenant, ok = g.tenant(r)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="qozd"`)
		jsonError(w, r, http.StatusUnauthorized, "missing or invalid bearer token")
		return "", false
	}
	// /metrics is authenticated but never rate-limited: a scraper must not
	// be able to starve itself (or tenants sharing its token) of the very
	// counters that would explain the 429s.
	if r.URL.Path == "/metrics" {
		return tenant, true
	}
	if allowed, retryAfter := g.limiter.Allow(tenant, time.Now()); !allowed {
		g.mu.Lock()
		g.limited[tenant]++
		g.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
		jsonError(w, r, http.StatusTooManyRequests, "tenant %q over its request rate; retry after %v", tenant, retryAfter.Round(time.Millisecond))
		return tenant, false
	}
	return tenant, true
}

// limitedByTenant snapshots the per-tenant 429 counters for /metrics.
func (g *guard) limitedByTenant() (tenants []string, counts map[string]int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	counts = make(map[string]int64, len(g.limited))
	for t, n := range g.limited {
		tenants = append(tenants, t)
		counts[t] = n
	}
	sort.Strings(tenants)
	return tenants, counts
}
