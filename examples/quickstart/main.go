// Quickstart: compress a 3D scientific field with QoZ, decompress it, and
// verify the error bound and quality metrics.
package main

import (
	"fmt"
	"log"

	"qoz"
	"qoz/datagen"
	"qoz/metrics"
)

func main() {
	// A synthetic cosmology density field (stand-in for NYX baryon density).
	ds := datagen.NYX(64, 64, 64)
	fmt.Printf("dataset: %s, %d points\n", ds, ds.Len())

	// Compress with a value-range-relative bound of 1e-3, letting QoZ
	// auto-tune for maximum compression ratio (the default metric).
	buf, stats, err := qoz.CompressStats(ds.Data, ds.Dims, qoz.Options{
		RelBound: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d -> %d bytes (CR %.1f)\n",
		ds.Len()*4, len(buf), metrics.CompressionRatio(ds.Len(), len(buf)))
	fmt.Printf("auto-tuned parameters: α=%.2f β=%.2f over %d interpolation levels\n",
		stats.Alpha, stats.Beta, stats.Levels)

	// Decompress and verify.
	recon, dims, err := qoz.Decompress(buf)
	if err != nil {
		log.Fatal(err)
	}
	maxErr, _ := metrics.MaxAbsError(ds.Data, recon)
	psnr, _ := metrics.PSNR(ds.Data, recon)
	fmt.Printf("reconstructed dims %v\n", dims)
	fmt.Printf("max abs error: %.4g (bound %.4g) — bound respected: %v\n",
		maxErr, stats.AbsBound, maxErr <= stats.AbsBound)
	fmt.Printf("PSNR: %.2f dB\n", psnr)
}
