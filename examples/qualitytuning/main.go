// Quality-tuning example: the AC-preferred mode in action. Many analyses
// want compression errors that look like white noise (low autocorrelation);
// this example shows QoZ trading a little ratio for much whiter errors on
// a turbulence field — the paper's Fig. 10 scenario.
package main

import (
	"fmt"
	"log"

	"qoz"
	"qoz/datagen"
	"qoz/metrics"
)

func main() {
	ds := datagen.Miranda()
	fmt.Printf("dataset: %s — PSNR-preferred vs AC-preferred tuning\n\n", ds)
	fmt.Printf("%-16s %10s %10s %12s\n", "mode", "CR", "PSNR(dB)", "|AC(lag1)|")
	for _, m := range []qoz.Tuning{qoz.TunePSNR, qoz.TuneAC} {
		buf, err := qoz.Compress(ds.Data, ds.Dims, qoz.Options{
			RelBound: 1e-3,
			Metric:   m,
		})
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := qoz.Decompress(buf)
		if err != nil {
			log.Fatal(err)
		}
		psnr, _ := metrics.PSNR(ds.Data, recon)
		ac, _ := metrics.AutoCorrelation(ds.Data, recon, 1)
		fmt.Printf("%-16s %10.1f %10.2f %12.4f\n",
			m, metrics.CompressionRatio(ds.Len(), len(buf)), psnr, abs(ac))
	}
	fmt.Println("\nlower |AC| means compression errors closer to white noise")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
