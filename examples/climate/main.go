// Climate example: compress a 2D climate-model field under different
// quality-metric inclinations (the paper's Fig. 1 scenario) and compare
// what each mode delivers at the same error bound.
package main

import (
	"fmt"
	"log"
	"os"

	"qoz"
	"qoz/datagen"
	"qoz/metrics"
)

func main() {
	ds := datagen.CESMATM() // 450x900 atmosphere field
	fmt.Printf("dataset: %s — same error bound, different quality inclinations\n\n", ds)

	modes := []struct {
		name   string
		metric qoz.Tuning
	}{
		{"max compression ratio", qoz.TuneCR},
		{"rate-PSNR preferred", qoz.TunePSNR},
		{"rate-SSIM preferred", qoz.TuneSSIM},
		{"low error autocorrelation", qoz.TuneAC},
	}
	fmt.Printf("%-28s %8s %9s %8s %8s\n", "mode", "CR", "PSNR(dB)", "SSIM", "AC(lag1)")
	for _, m := range modes {
		buf, err := qoz.Compress(ds.Data, ds.Dims, qoz.Options{
			RelBound: 1e-3,
			Metric:   m.metric,
		})
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := qoz.Decompress(buf)
		if err != nil {
			log.Fatal(err)
		}
		psnr, _ := metrics.PSNR(ds.Data, recon)
		ssim, _ := metrics.SSIM(ds.Data, recon, ds.Dims)
		ac, _ := metrics.AutoCorrelation(ds.Data, recon, 1)
		fmt.Printf("%-28s %8.1f %9.2f %8.4f %+8.4f\n",
			m.name, metrics.CompressionRatio(ds.Len(), len(buf)), psnr, ssim, ac)
	}
	fmt.Fprintln(os.Stderr, "\nevery mode respects the same point-wise error bound; only the rate/quality trade-off shifts")
}
