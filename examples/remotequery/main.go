// Remote ROI query walkthrough: build a brick store, publish it behind a
// plain HTTP file server (any range-capable origin — S3, GCS, nginx —
// behaves the same), then serve region-of-interest reads straight off the
// wire with store.OpenURL. Only the header, the index, and the bricks a
// region intersects ever cross the network, so a multi-terabyte archive
// in a bucket answers a small ROI with a handful of range requests.
//
// The same mount works one level up: `qozd -mount nyx=<url>` exposes the
// store over GET /v1/fields/nyx/region without the client linking qoz.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"qoz"
	"qoz/datagen"
	"qoz/store"
)

func main() {
	ctx := context.Background()

	// 1. Build the archive: a synthetic cosmology field in 16^3-point
	//    bricks under a 1e-3 relative bound.
	ds := datagen.NYX(64, 64, 64)
	path := filepath.Join(os.TempDir(), "remotequery.qozb")
	defer os.Remove(path)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Write(ctx, f, ds.Data, ds.Dims, store.WriteOptions{
		Opts:  qoz.Options{RelBound: 1e-3},
		Brick: []int{16, 16, 16},
	}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	content, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %s, %d bytes (CR %.1f), %d bricks\n",
		path, len(content), float64(ds.Len()*4)/float64(len(content)), 64)

	// 2. Publish it. A stand-in for the bucket: a localhost server that
	//    honors Range requests (http.ServeContent) and counts them.
	var ranges atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Range") != "" {
			ranges.Add(1)
		}
		w.Header().Set("ETag", `"remotequery-v1"`)
		http.ServeContent(w, r, "remotequery.qozb", time.Now(), bytes.NewReader(content))
	})}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/remotequery.qozb"
	fmt.Printf("origin:  %s\n", url)

	// 3. Open the archive over the wire. Only the header and index are
	//    fetched here; bricks stay remote until a region asks for them.
	s, err := store.OpenURL(url, store.Options{
		CacheBytes: 32 << 20,
		Remote: store.RemoteOptions{
			// Coalesce adjacent brick fetches into 4 KiB ranges — tiny so
			// this toy archive shows partial transfer; production archives
			// want the 1 MiB default or more.
			ReadAhead:    4 << 10,
			MaxRetries:   3,
			RetryBackoff: 50 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	open := s.Stats()
	fmt.Printf("opened:  dims %v, brick %v, bound %.4g — %d bytes fetched of %d (%.1f%%)\n",
		s.Dims(), s.BrickShape(), s.ErrorBound(),
		open.RemoteBytes, len(content), 100*float64(open.RemoteBytes)/float64(len(content)))

	// 4. Serve an ROI across brick corners: 8 of the 64 bricks.
	lo, hi := []int{24, 24, 24}, []int{40, 40, 40}
	t0 := time.Now()
	roi, err := s.ReadRegion(ctx, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("ROI [%v,%v): %d points in %v — %d bricks decoded, %d range requests, %d bytes over the wire\n",
		lo, hi, len(roi), time.Since(t0), st.BricksDecoded, ranges.Load(), st.RemoteBytes)

	// The remote read must be bit-identical to a local one.
	local, err := store.OpenFile(path, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	want, err := local.ReadRegion(ctx, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(roi[i]) {
			log.Fatalf("remote read differs from local at point %d", i)
		}
	}
	fmt.Println("remote ROI is bit-identical to the local read")

	// 5. Overlapping ROI: bricks come from the shared decoded-brick cache,
	//    so nothing new crosses the network.
	before := s.Stats().RemoteBytes
	if _, err := s.ReadRegion(ctx, []int{24, 24, 24}, []int{36, 36, 36}); err != nil {
		log.Fatal(err)
	}
	st = s.Stats()
	fmt.Printf("overlapping ROI: %d cache hits, %d new bytes fetched\n",
		st.CacheHits, st.RemoteBytes-before)
}
