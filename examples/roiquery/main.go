// ROI query walkthrough: build a brick store from a large field, then
// serve small region-of-interest reads out of it — decoding only the
// bricks each region touches, with repeated overlapping reads hitting the
// decoded-brick LRU cache. This is the access pattern of post-hoc analysis
// over a compressed simulation archive: nobody reloads a multi-terabyte
// snapshot to look at one halo.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"qoz"
	"qoz/datagen"
	"qoz/store"
)

func main() {
	ctx := context.Background()

	// A synthetic cosmology field (stand-in for a NYX snapshot variable).
	ds := datagen.NYX(128, 128, 128)
	fmt.Printf("dataset: %s, %d points (%.0f MiB raw)\n",
		ds, ds.Len(), float64(ds.Len()*4)/(1<<20))

	// 1. Build the store: 32^3 bricks, each compressed independently with
	//    the QoZ codec under a relative bound of 1e-3.
	path := filepath.Join(os.TempDir(), "roiquery.qozb")
	defer os.Remove(path)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Write(ctx, f, ds.Data, ds.Dims, store.WriteOptions{
		Opts:  qoz.Options{RelBound: 1e-3},
		Brick: []int{32, 32, 32},
	}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("store: %s, %d bytes (CR %.1f)\n", path, st.Size(),
		float64(ds.Len()*4)/float64(st.Size()))

	// 2. Open it for random access with a 32 MiB decoded-brick cache.
	s, err := store.OpenFile(path, store.Options{CacheBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("opened: dims %v, brick %v, %d bricks, bound %.4g\n",
		s.Dims(), s.BrickShape(), s.NumBricks(), s.ErrorBound())

	// 3. Extract a small ROI — a 32x32x32 box straddling brick corners, so
	//    it touches 8 of the 64 bricks and leaves the rest on disk.
	lo, hi := []int{16, 16, 16}, []int{48, 48, 48}
	t0 := time.Now()
	roi, err := s.ReadRegion(ctx, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(t0)
	stats := s.Stats()
	fmt.Printf("ROI [%v,%v): %d points in %v, decoding %d of %d bricks\n",
		lo, hi, len(roi), cold, stats.BricksDecoded, s.NumBricks())

	// Verify the error bound holds on the extracted region.
	worst := 0.0
	k := 0
	for z := lo[0]; z < hi[0]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			for x := lo[2]; x < hi[2]; x++ {
				orig := float64(ds.Data[(z*128+y)*128+x])
				worst = math.Max(worst, math.Abs(orig-float64(roi[k])))
				k++
			}
		}
	}
	fmt.Printf("max abs error in ROI: %.4g (bound %.4g) — bound respected: %v\n",
		worst, s.ErrorBound(), worst <= s.ErrorBound())

	// 4. Read an overlapping ROI: shared bricks come from the LRU cache.
	t0 = time.Now()
	if _, err := s.ReadRegion(ctx, []int{16, 16, 16}, []int{40, 40, 40}); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(t0)
	stats = s.Stats()
	fmt.Printf("overlapping ROI: %v (was %v cold); cache hits %d, cached %.1f MiB\n",
		warm, cold, stats.CacheHits, float64(stats.CachedBytes)/(1<<20))

	// 5. Compare with what serving the same ROI used to cost: decoding the
	//    whole field through the streaming codec.
	t0 = time.Now()
	if _, err := s.ReadField(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-field decode for contrast: %v\n", time.Since(t0))
}
