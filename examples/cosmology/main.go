// Cosmology example: rate-distortion study on a lognormal density field
// (NYX stand-in), sweeping error bounds and comparing QoZ against the SZ3
// and ZFP baselines — a miniature version of the paper's Fig. 8.
package main

import (
	"fmt"
	"log"

	"qoz"
	"qoz/baselines"
	"qoz/datagen"
	"qoz/metrics"
)

func main() {
	ds := datagen.NYX()
	fmt.Printf("dataset: %s — rate-distortion sweep\n\n", ds)
	codecs := []baselines.Codec{
		baselines.QoZ(qoz.TunePSNR),
		baselines.SZ3(),
		baselines.ZFP(),
	}
	vr := metrics.ValueRange(ds.Data)
	fmt.Printf("%-10s", "ε")
	for _, c := range codecs {
		fmt.Printf(" %22s", c.Name()+" bpp/PSNR")
	}
	fmt.Println()
	for _, rel := range []float64{1e-2, 3e-3, 1e-3, 3e-4, 1e-4} {
		fmt.Printf("%-10.0e", rel)
		for _, c := range codecs {
			buf, err := c.Compress(ds.Data, ds.Dims, rel*vr)
			if err != nil {
				log.Fatal(err)
			}
			recon, _, err := c.Decompress(buf)
			if err != nil {
				log.Fatal(err)
			}
			psnr, _ := metrics.PSNR(ds.Data, recon)
			fmt.Printf("      %6.3f / %6.2f", metrics.BitRate(len(buf), ds.Len()), psnr)
		}
		fmt.Println()
	}
}
