// Parallel-I/O example: how compression ratio turns into dump/load
// throughput at scale (the paper's Fig. 14). Codec profiles are measured
// on real data here, then extrapolated through the Bebop-like machine
// model to 1K–8K cores at 1.3 GB/core.
package main

import (
	"fmt"
	"log"

	"qoz"
	"qoz/baselines"
	"qoz/datagen"
	"qoz/metrics"
	"qoz/parallelio"
)

func main() {
	ds := datagen.Hurricane()
	eb := 1e-3 * metrics.ValueRange(ds.Data)
	fmt.Printf("profiling codecs on %s (ε=1e-3)...\n\n", ds)

	profiles := []parallelio.CodecProfile{parallelio.RawProfile()}
	for _, c := range []baselines.Codec{
		baselines.SZ2(), baselines.SZ3(), baselines.ZFP(),
		baselines.MGARD(), baselines.QoZ(qoz.TuneCR),
	} {
		p, err := parallelio.Profile(c, ds.Data, ds.Dims, eb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s compress %6.0f MB/s, decompress %6.0f MB/s, CR %6.1f\n",
			p.Name, p.CompressMBps, p.DecompressMBps, p.Ratio)
		profiles = append(profiles, p)
	}

	machine := parallelio.Bebop()
	fmt.Printf("\n%-8s %6s %9s %10s %10s\n", "codec", "cores", "total TB", "dump GB/s", "load GB/s")
	for _, p := range profiles {
		for _, cores := range []int{1024, 2048, 4096, 8192} {
			r, err := parallelio.Simulate(machine, p, cores, 1.3e9)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %6d %9.1f %10.1f %10.1f\n",
				p.Name, cores, r.TotalGB/1000, r.DumpGBps, r.LoadGBps)
		}
	}
}
