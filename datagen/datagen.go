// Package datagen synthesizes deterministic scientific-looking test fields
// standing in for the six SDRBench datasets used in the QoZ paper (RTM,
// Miranda, CESM-ATM, SCALE-LETKF, NYX, Hurricane-Isabel). Real datasets are
// hundreds of gigabytes and not redistributable here; each generator
// reproduces the qualitative property of its dataset that drives the
// paper's compression results — see DESIGN.md §3/§4 for the substitution
// rationale. All generators are fully deterministic for a given seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"qoz/internal/fft"
)

// Dataset is a named flat field with its spatial dimensions (row-major,
// last dimension fastest).
type Dataset struct {
	Name string
	Data []float32
	Dims []int
}

// Len returns the number of points in the dataset.
func (d Dataset) Len() int { return len(d.Data) }

// String implements fmt.Stringer.
func (d Dataset) String() string { return fmt.Sprintf("%s%v", d.Name, d.Dims) }

// Default dimensions keep the full experiment suite laptop-friendly; the
// paper's originals are listed in DESIGN.md. Pass explicit dims to any
// generator for other sizes.
var (
	DefaultRTMDims     = []int{96, 96, 64}
	DefaultMirandaDims = []int{64, 96, 96}
	DefaultCESMDims    = []int{450, 900}
	DefaultLETKFDims   = []int{48, 256, 256}
	DefaultNYXDims     = []int{96, 96, 96}
	DefaultHurrDims    = []int{48, 224, 224}
)

func pick(dims, def []int) []int {
	if len(dims) == 0 {
		return append([]int(nil), def...)
	}
	return append([]int(nil), dims...)
}

// RTM mimics a reverse-time-migration seismic wavefield: expanding damped
// wavefronts from several sources over a layered velocity background. The
// field is oscillatory in a moving band and near-zero elsewhere, which is
// the regime where bounded-range interpolation (anchor points) pays off.
func RTM(dims ...int) Dataset {
	d := pick(dims, DefaultRTMDims)
	nz, ny, nx := d[0], d[1], d[2]
	data := make([]float32, nz*ny*nx)
	rng := rand.New(rand.NewSource(101))
	type src struct{ z, y, x, t, k float64 }
	sources := make([]src, 4)
	for i := range sources {
		sources[i] = src{
			z: rng.Float64() * float64(nz),
			y: rng.Float64() * float64(ny),
			x: rng.Float64() * float64(nx),
			t: (0.25 + 0.5*rng.Float64()) * float64(min3(nz, ny, nx)),
			k: 0.35 + 0.25*rng.Float64(),
		}
	}
	idx := 0
	for z := 0; z < nz; z++ {
		layer := 1 + 0.2*math.Sin(float64(z)/9)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				var v float64
				for _, s := range sources {
					dz := float64(z) - s.z
					dy := float64(y) - s.y
					dx := float64(x) - s.x
					r := math.Sqrt(dz*dz+dy*dy+dx*dx) * layer
					// Ricker-like wavefront centered at radius s.t.
					u := (r - s.t) * s.k
					v += (1 - 2*u*u) * math.Exp(-u*u) / (1 + 0.02*r)
				}
				data[idx] = float32(v)
				idx++
			}
		}
	}
	return Dataset{Name: "RTM", Data: data, Dims: d}
}

// Miranda mimics a radiation-hydrodynamics turbulent-mixing field: a
// quiescent smooth region separated from a turbulent region by a wavy
// mixing interface. The strong regional variation of smoothness is what
// makes anchor points and level-adapted interpolation win big on Miranda
// in the paper (Table III, Fig. 8).
func Miranda(dims ...int) Dataset {
	d := pick(dims, DefaultMirandaDims)
	nz, ny, nx := d[0], d[1], d[2]
	turb := grf3D(nz, ny, nx, 2.6, 202)
	data := make([]float32, nz*ny*nx)
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Interface height oscillates across (y, x).
				h := 0.55*float64(nz) +
					4*math.Sin(float64(y)/17) + 3*math.Cos(float64(x)/23)
				// Mixing fraction: 0 below the interface, 1 above, smooth.
				m := 0.5 * (1 + math.Tanh((float64(z)-h)/4))
				base := 1.5 + math.Tanh((float64(z)-h)/10) // density jump
				v := base + 0.6*m*(1-m)*4*turb[idx]        // turbulence localized at interface
				data[idx] = float32(v)
				idx++
			}
		}
	}
	return Dataset{Name: "Miranda", Data: data, Dims: d}
}

// CESMATM mimics a 2D atmosphere field from a climate model: smooth zonal
// (latitudinal) bands, a few storm systems, and mild small-scale texture.
func CESMATM(dims ...int) Dataset {
	d := pick(dims, DefaultCESMDims)
	ny, nx := d[0], d[1]
	tex := grf2D(ny, nx, 2.2, 303)
	rng := rand.New(rand.NewSource(304))
	type storm struct{ y, x, r, amp float64 }
	storms := make([]storm, 12)
	for i := range storms {
		storms[i] = storm{
			y:   rng.Float64() * float64(ny),
			x:   rng.Float64() * float64(nx),
			r:   8 + 30*rng.Float64(),
			amp: 0.5 + rng.Float64(),
		}
	}
	data := make([]float32, ny*nx)
	idx := 0
	for y := 0; y < ny; y++ {
		lat := (float64(y)/float64(ny-1) - 0.5) * math.Pi
		band := math.Cos(lat) + 0.3*math.Cos(3*lat)
		for x := 0; x < nx; x++ {
			v := band + 0.08*tex[idx]
			for _, s := range storms {
				dy := float64(y) - s.y
				dx := wrapDelta(float64(x)-s.x, float64(nx))
				v += s.amp * math.Exp(-(dy*dy+dx*dx)/(2*s.r*s.r))
			}
			data[idx] = float32(v)
			idx++
		}
	}
	return Dataset{Name: "CESM-ATM", Data: data, Dims: d}
}

// ScaleLETKF mimics a regional weather-model field: vertically layered
// structure with a sharp moving front and moderate noise.
func ScaleLETKF(dims ...int) Dataset {
	d := pick(dims, DefaultLETKFDims)
	nz, ny, nx := d[0], d[1], d[2]
	tex := grf2D(ny, nx, 2.0, 404)
	data := make([]float32, nz*ny*nx)
	idx := 0
	for z := 0; z < nz; z++ {
		lapse := 1 - 0.6*float64(z)/float64(nz) // temperature-like decay
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Front: a tanh ridge sweeping diagonally, tilting with height.
				fpos := 0.4*float64(nx) + 0.2*float64(y) + 1.5*float64(z)
				front := math.Tanh((float64(x) - fpos) / 6)
				v := lapse*(2+front) + 0.15*tex[y*nx+x]*lapse +
					0.2*math.Sin(float64(y)/21+float64(z)/7)
				data[idx] = float32(v)
				idx++
			}
		}
	}
	return Dataset{Name: "SCALE-LETKF", Data: data, Dims: d}
}

// NYX mimics a cosmological baryon-density field: the exponential of a
// Gaussian random field, giving the spiky, high-dynamic-range distribution
// that limits interpolation gains in the paper (Table III shows small
// improvements on NYX).
func NYX(dims ...int) Dataset {
	d := pick(dims, DefaultNYXDims)
	nz, ny, nx := d[0], d[1], d[2]
	g := grf3D(nz, ny, nx, 1.8, 505)
	data := make([]float32, nz*ny*nx)
	for i, v := range g {
		data[i] = float32(math.Exp(2.2 * v)) // lognormal density
	}
	return Dataset{Name: "NYX", Data: data, Dims: d}
}

// Hurricane mimics one field of the Hurricane-Isabel simulation: a strong
// vortex with spiral rain bands and background shear flow.
func Hurricane(dims ...int) Dataset {
	d := pick(dims, DefaultHurrDims)
	nz, ny, nx := d[0], d[1], d[2]
	tex := grf2D(ny, nx, 2.1, 606)
	data := make([]float32, nz*ny*nx)
	cy, cx := 0.55*float64(ny), 0.45*float64(nx)
	idx := 0
	for z := 0; z < nz; z++ {
		decay := math.Exp(-float64(z) / (0.7 * float64(nz)))
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				dy := float64(y) - cy
				dx := float64(x) - cx
				r := math.Sqrt(dy*dy + dx*dx)
				theta := math.Atan2(dy, dx)
				// Rankine vortex tangential speed.
				rc := 12.0
				var speed float64
				if r < rc {
					speed = r / rc
				} else {
					speed = rc / r * (1 + 0.2*math.Sin(2*theta-0.3*math.Log(1+r)))
				}
				bands := 0.3 * math.Sin(3*theta-0.25*r) * math.Exp(-r/(0.4*float64(nx)))
				v := 40*speed*decay + 8*bands*decay +
					0.1*float64(y)/float64(ny) + 1.5*tex[y*nx+x]*0.2
				data[idx] = float32(v)
				idx++
			}
		}
	}
	return Dataset{Name: "Hurricane", Data: data, Dims: d}
}

// All returns the six standard datasets at their default sizes, in the
// order used throughout the paper's tables.
func All() []Dataset {
	return []Dataset{RTM(), Miranda(), CESMATM(), ScaleLETKF(), NYX(), Hurricane()}
}

// AllSmall returns reduced-size variants of the six datasets for unit and
// integration tests.
func AllSmall() []Dataset {
	return []Dataset{
		RTM(32, 32, 24),
		Miranda(24, 32, 32),
		CESMATM(96, 160),
		ScaleLETKF(16, 64, 64),
		NYX(32, 32, 32),
		Hurricane(12, 64, 64),
	}
}

// ByName returns the default-size dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Names lists the standard dataset names in table order.
func Names() []string {
	return []string{"RTM", "Miranda", "CESM-ATM", "SCALE-LETKF", "NYX", "Hurricane"}
}

// wrapDelta maps a periodic coordinate difference into [-n/2, n/2).
func wrapDelta(d, n float64) float64 {
	for d >= n/2 {
		d -= n
	}
	for d < -n/2 {
		d += n
	}
	return d
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// grf3D synthesizes a real 3D Gaussian random field with isotropic power
// spectrum |A(k)| ~ (1+|k|^2)^(-slope/2), normalized to unit standard
// deviation, cropped from a power-of-two synthesis cube.
func grf3D(nz, ny, nx int, slope float64, seed int64) []float64 {
	pz, py, px := nextPow2(nz), nextPow2(ny), nextPow2(nx)
	rng := rand.New(rand.NewSource(seed))
	spec := make([]complex128, pz*py*px)
	for z := 0; z < pz; z++ {
		kz := freq(z, pz)
		for y := 0; y < py; y++ {
			ky := freq(y, py)
			for x := 0; x < px; x++ {
				kx := freq(x, px)
				k2 := kz*kz + ky*ky + kx*kx
				amp := math.Pow(1+k2, -slope/2)
				re := rng.NormFloat64() * amp
				im := rng.NormFloat64() * amp
				spec[(z*py+y)*px+x] = complex(re, im)
			}
		}
	}
	if err := fft.Inverse3D(spec, pz, py, px); err != nil {
		panic(err) // dims are powers of two by construction
	}
	out := make([]float64, nz*ny*nx)
	var mean, m2 float64
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := real(spec[(z*py+y)*px+x])
				out[i] = v
				mean += v
				i++
			}
		}
	}
	mean /= float64(len(out))
	for _, v := range out {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2 / float64(len(out)))
	if std == 0 {
		std = 1
	}
	for i := range out {
		out[i] = (out[i] - mean) / std
	}
	return out
}

// grf2D is the 2D analog of grf3D.
func grf2D(ny, nx int, slope float64, seed int64) []float64 {
	field := grf3D(1, ny, nx, slope, seed)
	return field
}

// freq maps an FFT bin index to a signed integer frequency.
func freq(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}
