package datagen

import (
	"math"
	"testing"
)

func TestAllShapesAndDeterminism(t *testing.T) {
	for _, d := range AllSmall() {
		n := 1
		for _, dim := range d.Dims {
			n *= dim
		}
		if n != len(d.Data) {
			t.Fatalf("%s: dims %v inconsistent with %d points", d.Name, d.Dims, len(d.Data))
		}
		for i, v := range d.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value at %d", d.Name, i)
			}
		}
	}
	// Determinism: two invocations produce identical bytes.
	a := NYX(16, 16, 16)
	b := NYX(16, 16, 16)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("NYX not deterministic at %d", i)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	d := CESMATM()
	if d.Dims[0] != DefaultCESMDims[0] || d.Dims[1] != DefaultCESMDims[1] {
		t.Fatalf("default CESM dims = %v", d.Dims)
	}
	if d.Name != "CESM-ATM" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, d.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNYXIsSpiky(t *testing.T) {
	d := NYX(32, 32, 32)
	var mean float64
	lo, hi := d.Data[0], d.Data[0]
	for _, v := range d.Data {
		mean += float64(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mean /= float64(len(d.Data))
	// Lognormal: max far above mean, min positive.
	if lo <= 0 {
		t.Fatalf("density must be positive, min=%v", lo)
	}
	if float64(hi) < 5*mean {
		t.Fatalf("expected heavy tail: max=%v mean=%v", hi, mean)
	}
}

func TestMirandaRegionalSmoothness(t *testing.T) {
	// Variance of increments near the mixing interface should far exceed
	// variance in the quiescent region — the property that motivates
	// anchor points in the paper.
	d := Miranda(48, 48, 48)
	nz, ny, nx := 48, 48, 48
	varIn, varOut := 0.0, 0.0
	nIn, nOut := 0, 0
	at := func(z, y, x int) float64 { return float64(d.Data[(z*ny+y)*nx+x]) }
	for z := 1; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				inc := at(z, y, x) - at(z-1, y, x)
				if z > nz/2-6 && z < nz/2+14 { // near interface (~0.55 nz)
					varIn += inc * inc
					nIn++
				} else if z < nz/4 {
					varOut += inc * inc
					nOut++
				}
			}
		}
	}
	varIn /= float64(nIn)
	varOut /= float64(nOut)
	if varIn < 10*varOut {
		t.Fatalf("interface variance %g not ≫ quiescent variance %g", varIn, varOut)
	}
}

func TestHurricaneHasVortexPeak(t *testing.T) {
	d := Hurricane(8, 64, 64)
	// Max magnitude should sit near the vortex radius, not at the border.
	ny, nx := 64, 64
	best, bz, by, bx := float32(-1), 0, 0, 0
	for z := 0; z < 8; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := d.Data[(z*ny+y)*nx+x]
				if v > best {
					best, bz, by, bx = v, z, y, x
				}
			}
		}
	}
	_ = bz
	cy, cx := 0.55*float64(ny), 0.45*float64(nx)
	r := math.Hypot(float64(by)-cy, float64(bx)-cx)
	if r > 20 {
		t.Fatalf("peak at (%d,%d), radius %.1f from center; expected near eyewall", by, bx, r)
	}
}

func TestWrapDelta(t *testing.T) {
	if got := wrapDelta(90, 100); got != -10 {
		t.Fatalf("wrapDelta(90,100) = %v, want -10", got)
	}
	if got := wrapDelta(-70, 100); got != 30 {
		t.Fatalf("wrapDelta(-70,100) = %v, want 30", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
