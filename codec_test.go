package qoz_test

import (
	"context"
	"math"
	"testing"

	"qoz"
	"qoz/baselines"
	"qoz/datagen"
	"qoz/metrics"
)

func TestRegistryLookup(t *testing.T) {
	want := []string{"mgard", "qoz", "sz2", "sz3", "zfp"}
	got := qoz.Codecs()
	if len(got) != len(want) {
		t.Fatalf("Codecs() = %v, want %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("Codecs() = %v, want %v", got, want)
		}
		c, err := qoz.Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if c.Name() != n {
			t.Fatalf("Lookup(%q).Name() = %q", n, c.Name())
		}
		byID, err := qoz.LookupID(c.ID())
		if err != nil || byID.Name() != n {
			t.Fatalf("LookupID(%d) = %v, %v; want %q", c.ID(), byID, err, n)
		}
	}
	if _, err := qoz.Lookup("nope"); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
	if _, err := qoz.LookupID(200); err == nil {
		t.Error("LookupID of unknown id succeeded")
	}
}

type fakeCodec struct {
	name string
	id   uint8
}

func (f fakeCodec) Name() string { return f.name }
func (f fakeCodec) ID() uint8    { return f.id }
func (f fakeCodec) Compress(context.Context, []float32, []int, qoz.Options) ([]byte, error) {
	return nil, nil
}
func (f fakeCodec) Decompress(context.Context, []byte) ([]float32, []int, error) {
	return nil, nil, nil
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := qoz.Register(nil); err == nil {
		t.Error("nil codec registered")
	}
	if err := qoz.Register(fakeCodec{"qoz", 99}); err == nil {
		t.Error("duplicate name registered")
	}
	if err := qoz.Register(fakeCodec{"fresh", 1}); err == nil {
		t.Error("duplicate id registered")
	}
	if err := qoz.Register(fakeCodec{"", 99}); err == nil {
		t.Error("unnamed codec registered")
	}
}

func TestGenericRoundTripAllCodecs(t *testing.T) {
	ds := datagen.NYX(16, 16, 16)
	eb := 1e-3 * metrics.ValueRange(ds.Data)
	ctx := context.Background()
	d64 := make([]float64, len(ds.Data))
	for i, v := range ds.Data {
		d64[i] = float64(v)
	}
	for _, name := range qoz.Codecs() {
		c := qoz.MustLookup(name)
		opts := qoz.Options{ErrorBound: eb}

		buf, err := qoz.Encode(ctx, c, ds.Data, ds.Dims, opts)
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		recon, dims, err := qoz.Decode[float32](ctx, buf)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if len(dims) != 3 || len(recon) != ds.Len() {
			t.Fatalf("%s: shape %v, %d points", name, dims, len(recon))
		}
		maxErr, _ := metrics.MaxAbsError(ds.Data, recon)
		if maxErr > eb*(1+1e-12) {
			t.Fatalf("%s: bound violated: %g > %g", name, maxErr, eb)
		}

		buf64, err := qoz.Encode(ctx, c, d64, ds.Dims, opts)
		if err != nil {
			t.Fatalf("%s: Encode[float64]: %v", name, err)
		}
		recon64, _, err := qoz.Decode[float64](ctx, buf64)
		if err != nil {
			t.Fatalf("%s: Decode[float64]: %v", name, err)
		}
		for i := range d64 {
			if math.Abs(d64[i]-recon64[i]) > eb*(1+1e-12) {
				t.Fatalf("%s: float64 bound violated at %d", name, i)
			}
		}
		if _, _, err := qoz.Decode[float32](ctx, buf64); err == nil {
			t.Fatalf("%s: float64 stream narrowed to float32", name)
		}
	}
}

func TestDecodeLegacyFormats(t *testing.T) {
	ds := datagen.NYX(16, 16, 16)
	eb := 1e-3 * metrics.ValueRange(ds.Data)
	ctx := context.Background()

	// Legacy QoZ container from the deprecated free function.
	legacy, err := qoz.Compress(ds.Data, ds.Dims, qoz.Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := qoz.Decode[float32](ctx, legacy)
	if err != nil {
		t.Fatalf("Decode of legacy container: %v", err)
	}
	b, _, err := qoz.Decompress(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("Decode and Decompress disagree at %d", i)
		}
	}

	// A baseline's bare container routes through the registry by id.
	sz3buf, err := baselines.SZ3().Compress(ds.Data, ds.Dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := qoz.Decode[float32](ctx, sz3buf); err != nil {
		t.Fatalf("Decode of SZ3 container: %v", err)
	}
	// Widening a float32 container into float64 is allowed.
	if _, _, err := qoz.Decode[float64](ctx, sz3buf); err != nil {
		t.Fatalf("Decode[float64] of float32 container: %v", err)
	}

	// Legacy float64 envelope.
	d64 := make([]float64, len(ds.Data))
	for i, v := range ds.Data {
		d64[i] = float64(v)
	}
	env, err := qoz.CompressFloat64(d64, ds.Dims, qoz.Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := qoz.Decode[float64](ctx, env); err != nil {
		t.Fatalf("Decode of legacy float64 envelope: %v", err)
	}
	if _, _, err := qoz.Decode[float32](ctx, env); err == nil {
		t.Fatal("legacy float64 envelope narrowed to float32")
	}
}

type myF32 float32

func TestGenericDefinedType(t *testing.T) {
	ctx := context.Background()
	n := 512
	data := make([]myF32, n)
	for i := range data {
		data[i] = myF32(math.Sin(float64(i) / 20))
	}
	buf, err := qoz.Encode(ctx, nil, data, []int{n}, qoz.Options{RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := qoz.Decode[myF32](ctx, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 1 || len(recon) != n {
		t.Fatalf("shape %v, %d points", dims, len(recon))
	}
	eb := 2 * 1e-3 // value range is ~2
	for i := range data {
		if math.Abs(float64(data[i])-float64(recon[i])) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	ds := datagen.NYX(16, 16, 16)
	eb := 1e-3 * metrics.ValueRange(ds.Data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := qoz.Encode(ctx, nil, ds.Data, ds.Dims, qoz.Options{ErrorBound: eb}); err == nil {
		t.Error("Encode with canceled context succeeded")
	}
	buf, err := qoz.Encode(context.Background(), nil, ds.Data, ds.Dims, qoz.Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := qoz.Decode[float32](ctx, buf); err == nil {
		t.Error("Decode with canceled context succeeded")
	}
}
