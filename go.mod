module qoz

go 1.24
