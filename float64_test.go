package qoz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qoz/datagen"
	"qoz/internal/core"
)

func TestFloat64RoundTripRespectsBound(t *testing.T) {
	ds := datagen.NYX(32, 32, 32)
	data := make([]float64, ds.Len())
	for i, v := range ds.Data {
		data[i] = float64(v) * 1.000000001 // genuinely double-precision
	}
	eb := 1e-3 * valueRange64(data)
	buf, err := CompressFloat64(data, ds.Dims, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := DecompressFloat64(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || len(recon) != len(data) {
		t.Fatalf("shape %v", dims)
	}
	for i := range data {
		if math.Abs(data[i]-recon[i]) > eb {
			t.Fatalf("bound violated at %d: %g", i, math.Abs(data[i]-recon[i]))
		}
	}
}

// TestFloat64InnerStreamMatchesReference pins the fused decode pipeline
// bit-identical to the closure-based scalar oracle on the float32 core
// stream embedded in a float64 envelope. The envelope overlay itself is
// a deterministic function of that core reconstruction, so this extends
// the core differential guarantee to the f64 path.
func TestFloat64InnerStreamMatchesReference(t *testing.T) {
	ds := datagen.NYX(24, 24, 24)
	data := make([]float64, ds.Len())
	for i, v := range ds.Data {
		data[i] = float64(v) * 1.000000001
	}
	eb := 1e-3 * valueRange64(data)
	for _, opts := range []Options{
		{ErrorBound: eb},
		{ErrorBound: eb, DisableAnchors: true},
	} {
		buf, err := CompressFloat64(data, ds.Dims, opts)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := envelopeInner(buf)
		if err != nil {
			t.Fatal(err)
		}
		fast, _, err := core.Decompress(inner)
		if err != nil {
			t.Fatalf("fast inner decode: %v", err)
		}
		ref, _, err := core.DecompressReference(inner)
		if err != nil {
			t.Fatalf("reference inner decode: %v", err)
		}
		for i := range fast {
			if math.Float32bits(fast[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("anchors=%v: inner recon[%d] = %x, want %x",
					!opts.DisableAnchors, i, math.Float32bits(fast[i]), math.Float32bits(ref[i]))
			}
		}
		if _, _, err := DecompressFloat64(buf); err != nil {
			t.Fatalf("envelope decode: %v", err)
		}
	}
}

func TestFloat64EscapesHighPrecisionPoints(t *testing.T) {
	// Large magnitude + tiny bound: float32 conversion alone would break
	// the bound, so points must be escaped and restored exactly.
	n := 256
	data := make([]float64, n)
	for i := range data {
		data[i] = 1e12 + float64(i)*1e-3
	}
	eb := 1e-4
	buf, err := CompressFloat64(data, []int{n}, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := DecompressFloat64(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != recon[i] {
			t.Fatalf("escaped point %d not exact: %v vs %v", i, data[i], recon[i])
		}
	}
}

func TestFloat64RelBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/30) + rng.NormFloat64()*0.001
	}
	buf, err := CompressFloat64(data, []int{n}, Options{RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := DecompressFloat64(buf)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e-3 * valueRange64(data)
	for i := range data {
		if math.Abs(data[i]-recon[i]) > eb {
			t.Fatalf("bound violated at %d", i)
		}
	}
	// It should actually compress.
	if len(buf) >= n*8 {
		t.Fatalf("no compression: %d bytes for %d doubles", len(buf), n*8)
	}
}

func TestFloat64Validation(t *testing.T) {
	if _, err := CompressFloat64(make([]float64, 4), []int{4}, Options{}); err == nil {
		t.Error("missing bound accepted")
	}
	if _, err := CompressFloat64(make([]float64, 4), []int{4},
		Options{ErrorBound: 1, RelBound: 1}); err == nil {
		t.Error("both bounds accepted")
	}
	if _, _, err := DecompressFloat64([]byte("xx")); err == nil {
		t.Error("garbage accepted")
	}
	// A float32 stream must be rejected by the float64 decoder.
	buf, err := Compress(make([]float32, 16), []int{16}, Options{ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(buf); err == nil {
		t.Error("float32 stream accepted as float64")
	}
}

func TestFloat64BoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		data := make([]float64, n)
		scale := math.Pow(10, rng.Float64()*8-4)
		for i := range data {
			data[i] = rng.NormFloat64() * scale
		}
		eb := math.Pow(10, -1-5*rng.Float64()) * valueRange64(data)
		if eb <= 0 {
			return true
		}
		buf, err := CompressFloat64(data, []int{n}, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		recon, _, err := DecompressFloat64(buf)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(data[i]-recon[i]) > eb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
