package qoz

// Progressive (multi-resolution) decoding. QoZ streams are emitted in
// level order — seed stage first, then interpolation levels from coarsest
// to finest — with each level in its own byte-aligned container section.
// A reader holding only the prefix of a stream up to a level boundary can
// therefore materialize the coarse grid of that level: the points whose
// coordinates are all multiples of the level's stride, bit-identical to
// the same points of a full decode. LevelOffsets reports where those
// boundaries lie; DecodeLevel32/DecodeLevel64 decode a prefix (or a whole
// stream) down to a requested level.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"qoz/internal/container"
	"qoz/internal/core"
	"qoz/internal/interp"
	"qoz/internal/szstream"
)

// LevelOffset locates one progressive level boundary in an encoded
// payload: decoding the first Bytes bytes materializes the coarse grid of
// Level. Level maxLevel+1 is the seed stage (the lossless anchor grid);
// level 1 is the full field, whose Bytes equal the payload length.
type LevelOffset struct {
	Level int
	Bytes int
}

// CoarseDims returns the shape of the stride-aligned subgrid of dims that
// a progressive decode with the given stride materializes.
func CoarseDims(dims []int, stride int) []int { return interp.CoarseDims(dims, stride) }

// LevelOffsets returns the level boundaries of an encoded payload — a QoZ
// container or a float64 escape envelope wrapping one — ordered from the
// seed stage down to level 1. It returns (nil, nil) for payloads that
// carry no level segments (other codecs, or streams from before level
// segmentation), which simply cannot be decoded progressively.
func LevelOffsets(buf []byte) ([]LevelOffset, error) {
	if IsFloat64Stream(buf) {
		inner, err := envelopeInner(buf)
		if err != nil {
			return nil, err
		}
		base := len(buf) - len(inner)
		offs, err := LevelOffsets(inner)
		if err != nil || offs == nil {
			return offs, err
		}
		for i := range offs {
			offs[i].Bytes += base
		}
		return offs, nil
	}
	codecID, err := container.PeekCodec(buf)
	if err != nil {
		return nil, err
	}
	if codecID != container.CodecQoZ {
		return nil, nil
	}
	spans, err := container.ScanSections(buf)
	if err != nil {
		return nil, err
	}
	end := map[int]int{}
	maxL := 0
	for _, sp := range spans {
		if level, _, ok := szstream.SectionLevel(sp.ID); ok {
			end[level] = sp.End
			if level > maxL {
				maxL = level
			}
		}
	}
	if maxL == 0 {
		return nil, nil // legacy single-segment layout
	}
	offs := make([]LevelOffset, 0, maxL)
	last := 0
	for l := maxL; l >= 1; l-- {
		e, ok := end[l]
		if !ok {
			return nil, fmt.Errorf("qoz: stream misses level %d segment", l)
		}
		if e < last {
			return nil, errors.New("qoz: level segments out of stream order")
		}
		last = e
		offs = append(offs, LevelOffset{Level: l, Bytes: e})
	}
	return offs, nil
}

// DecodeLevel32 decodes a QoZ container — or a byte-exact prefix ending
// at a level boundary, as range-fetched via LevelOffsets — down to the
// requested level. It returns the compacted coarse grid (row-major over
// CoarseDims(dims, stride)), the full field dims, and the stride of the
// materialized grid. level is clamped to the stream's own range; the
// values returned are bit-identical to the same grid points of a full
// decode.
func DecodeLevel32(buf []byte, level int) (coarse []float32, dims []int, stride int, err error) {
	return core.DecompressLevel(buf, level)
}

// DecodeLevel64 is DecodeLevel32 for the float64 escape envelope: the
// inner container's coarse heads are widened and every escaped value that
// lands on the coarse grid is restored exactly, so the result matches the
// same grid points of a full envelope decode bit-for-bit.
func DecodeLevel64(buf []byte, level int) (coarse []float64, dims []int, stride int, err error) {
	if len(buf) < len(f64Magic)+8 || string(buf[:len(f64Magic)]) != f64Magic {
		return nil, nil, 0, errors.New("qoz: not a float64 stream")
	}
	rest := buf[len(f64Magic)+8:]
	nEsc, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, nil, 0, errors.New("qoz: corrupt float64 envelope")
	}
	rest = rest[n:]
	if nEsc > uint64(len(rest))/9 {
		return nil, nil, 0, fmt.Errorf("qoz: escape count %d exceeds payload size %d", nEsc, len(rest))
	}
	escIdx := make([]uint64, nEsc)
	prev := uint64(0)
	for i := range escIdx {
		d, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, 0, errors.New("qoz: corrupt escape index")
		}
		if i > 0 && d == 0 {
			return nil, nil, 0, errors.New("qoz: non-increasing escape index")
		}
		if prev+d < prev {
			return nil, nil, 0, errors.New("qoz: escape index overflow")
		}
		rest = rest[n:]
		prev += d
		escIdx[i] = prev
	}
	if uint64(len(rest)) < 8*nEsc {
		return nil, nil, 0, errors.New("qoz: truncated escape values")
	}
	escVal := make([]float64, nEsc)
	for i := range escVal {
		escVal[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	rest = rest[8*nEsc:]

	heads, dims, stride, err := core.DecompressLevel(rest, level)
	if err != nil {
		return nil, nil, 0, err
	}
	out := make([]float64, len(heads))
	for i, h := range heads {
		out[i] = float64(h)
	}

	// Overlay the escapes that land on the coarse grid. Escape indices are
	// flat full-grid indices; points off the grid were not materialized.
	nd := len(dims)
	full := make([]int, nd)
	s := 1
	for i := nd - 1; i >= 0; i-- {
		full[i] = s
		s *= dims[i]
	}
	cd := interp.CoarseDims(dims, stride)
	cs := make([]int, nd)
	s = 1
	for i := nd - 1; i >= 0; i-- {
		cs[i] = s
		s *= cd[i]
	}
	npts := 1
	for _, d := range dims {
		npts *= d
	}
	for i, idx := range escIdx {
		if idx >= uint64(npts) {
			return nil, nil, 0, fmt.Errorf("qoz: escape index %d out of range", idx)
		}
		ci := 0
		on := true
		rem := int(idx)
		for d := 0; d < nd; d++ {
			c := rem / full[d]
			rem %= full[d]
			if c%stride != 0 {
				on = false
				break
			}
			ci += c / stride * cs[d]
		}
		if on {
			out[ci] = escVal[i]
		}
	}
	return out, dims, stride, nil
}
