// Package qoz is a from-scratch Go implementation of QoZ, the dynamic
// quality-metric-oriented error-bounded lossy compressor for scientific
// floating-point datasets (Liu et al., SC'22).
//
// QoZ guarantees a point-wise absolute error bound while letting the
// caller pick which quality metric the compressor should optimize
// online: compression ratio, PSNR, SSIM, or the autocorrelation of
// compression errors. Internally it uses a multi-level
// spline-interpolation predictor with grid-wise anchor points,
// level-adapted interpolator selection, and auto-tuned level-wise error
// bounds.
//
// # The unified codec API
//
// Every compressor (QoZ and the paper's baselines) is resolved from one
// registry and spoken to through one generic, context-aware API:
//
//	c := qoz.MustLookup("qoz") // or "sz2", "sz3", "zfp", "mgard"
//	buf, err := qoz.Encode(ctx, c, data, []int{nz, ny, nx}, qoz.Options{
//		RelBound: 1e-3,          // 1e-3 of the value range
//		Metric:   qoz.TunePSNR,  // optimize rate–PSNR (QoZ only)
//	})
//	...
//	recon, dims, err := qoz.Decode[float32](ctx, buf)
//
// [Encode] and [Decode] are generic over float32 and float64 fields.
// Double precision rides the escape envelope ([CompressEnvelope]): each
// value's float32 head is compressed under a tightened bound and the
// rare points whose conversion error alone threatens the bound — plus
// every NaN/±Inf — are stored exactly. The legacy free functions
// (Compress, Decompress, CompressFloat64, ...) remain as thin deprecated
// wrappers.
//
// # Streaming
//
// The streaming [Encoder] and [Decoder] chunk a field along its slowest
// dimension into independently compressed slabs, compress and decompress
// slabs concurrently on a bounded worker pool, and frame them over any
// io.Writer/io.Reader. The absolute bound is resolved once over the
// whole field before slabbing, so chunking never weakens the guarantee;
// [Decoder.NextSlab] and [Decoder.NextSlabFloat64] hand slabs to the
// caller one at a time without materializing the field.
//
// # Random access and serving
//
// The companion package qoz/store turns fields into brick stores —
// random-access archives where any region of interest decodes by
// touching only the bricks it intersects, served locally or over HTTP
// range requests, including mutable stores that grow by whole time
// steps (store.OpenMutable, store.Mutable.AppendSteps). The other
// companions provide the paper's comparison baselines (qoz/baselines),
// quality metrics (qoz/metrics), synthetic scientific datasets
// (qoz/datagen), and the parallel-I/O model (qoz/parallelio).
package qoz
